"""Random edit generation and the GEVO mutation operator.

A mutation event either appends a freshly generated random edit to the
genome (the common case -- GEVO grows genomes one edit at a time, which is
how stepping-stone edits accumulate), removes a random edit, or rewrites
one existing edit with a new random one.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..ir.analysis import collect_operand_pool
from ..ir.function import Module
from .config import GevoConfig
from .edits import (
    Edit,
    InstructionCopy,
    InstructionDelete,
    InstructionMove,
    InstructionReplace,
    InstructionSwap,
    OperandReplace,
)
from .genome import Individual


class EditGenerator:
    """Generates random edits against a fixed original module.

    ``candidate_edits`` optionally biases generation: with probability
    ``candidate_probability`` a mutation proposes one of the supplied edits
    instead of a fully random one.  Scaled-down experiments use this to
    reproduce the paper's search dynamics within a tractable budget -- at
    paper scale (population 256, hundreds of generations) the same edits
    are reachable by the unbiased operators, since every candidate is an
    ordinary operand-replacement or deletion over the kernel.
    """

    def __init__(self, module: Module, rng: random.Random,
                 weights: Optional[dict] = None,
                 candidate_edits: Optional[Sequence[Edit]] = None,
                 candidate_probability: float = 0.0):
        self.module = module
        self.rng = rng
        self.weights = dict(weights or {})
        self.candidate_edits = list(candidate_edits or [])
        self.candidate_probability = candidate_probability
        # Cache the mutation targets once: the original module never changes.
        self._mutable_uids: List[int] = []
        self._all_uids: List[int] = []
        self._operand_targets: List[int] = []
        self._uid_operand_counts = {}
        for inst in module.instructions():
            self._all_uids.append(inst.uid)
            if not inst.info.pinned:
                self._mutable_uids.append(inst.uid)
            if inst.operands:
                self._operand_targets.append(inst.uid)
                self._uid_operand_counts[inst.uid] = len(inst.operands)
        self._operand_pools = {
            name: collect_operand_pool(module.functions[name])
            for name in module.function_order()
        }
        self._uid_to_function = {}
        for name in module.function_order():
            for inst in module.functions[name].instructions():
                self._uid_to_function[inst.uid] = name

    # -- individual edit kinds -------------------------------------------------------
    def random_delete(self) -> Optional[Edit]:
        if not self._mutable_uids:
            return None
        return InstructionDelete(self.rng.choice(self._mutable_uids))

    def random_copy(self) -> Optional[Edit]:
        if not self._mutable_uids or not self._all_uids:
            return None
        return InstructionCopy(self.rng.choice(self._mutable_uids),
                               self.rng.choice(self._all_uids))

    def random_move(self) -> Optional[Edit]:
        if len(self._mutable_uids) < 2:
            return None
        source = self.rng.choice(self._mutable_uids)
        before = self.rng.choice(self._all_uids)
        if source == before:
            return None
        return InstructionMove(source, before)

    def random_replace(self) -> Optional[Edit]:
        if len(self._mutable_uids) < 2:
            return None
        target, source = self.rng.sample(self._mutable_uids, 2)
        return InstructionReplace(target, source)

    def random_swap(self) -> Optional[Edit]:
        if len(self._mutable_uids) < 2:
            return None
        first, second = self.rng.sample(self._mutable_uids, 2)
        return InstructionSwap(first, second)

    def random_operand_replace(self) -> Optional[Edit]:
        if not self._operand_targets:
            return None
        target = self.rng.choice(self._operand_targets)
        index = self.rng.randrange(self._uid_operand_counts[target])
        pool = self._operand_pools[self._uid_to_function[target]]
        if not pool:
            return None
        new_value = self.rng.choice(pool)
        return OperandReplace(target, index, new_value)

    # -- entry point -----------------------------------------------------------------
    def random_edit(self, max_attempts: int = 8) -> Optional[Edit]:
        """Generate one random edit, retrying if a kind is not applicable."""
        if self.candidate_edits and self.rng.random() < self.candidate_probability:
            return self.rng.choice(self.candidate_edits)
        generators = {
            "delete": self.random_delete,
            "copy": self.random_copy,
            "move": self.random_move,
            "replace": self.random_replace,
            "swap": self.random_swap,
            "operand": self.random_operand_replace,
        }
        kinds = [kind for kind in generators if self.weights.get(kind, 1.0) > 0]
        weights = [self.weights.get(kind, 1.0) for kind in kinds]
        for _ in range(max_attempts):
            kind = self.rng.choices(kinds, weights=weights, k=1)[0]
            edit = generators[kind]()
            if edit is not None:
                return edit
        return None


def mutate(individual: Individual, generator: EditGenerator,
           config: GevoConfig, rng: random.Random) -> Individual:
    """Return a mutated copy of *individual* (the original is untouched)."""
    child = individual.copy()
    roll = rng.random()
    remove_threshold = config.mutation_add_probability
    rewrite_threshold = remove_threshold + config.mutation_remove_probability
    if roll < remove_threshold or not child.edits:
        edit = generator.random_edit()
        if edit is not None:
            child.edits.append(edit)
    elif roll < rewrite_threshold:
        child.edits.pop(rng.randrange(len(child.edits)))
    else:
        edit = generator.random_edit()
        if edit is not None:
            child.edits[rng.randrange(len(child.edits))] = edit
    if config.max_edits_per_individual and len(child.edits) > config.max_edits_per_individual:
        del child.edits[: len(child.edits) - config.max_edits_per_individual]
    return child


def maybe_mutate(individual: Individual, generator: EditGenerator,
                 config: GevoConfig, rng: random.Random) -> Individual:
    """Apply mutation with the configured per-individual probability."""
    if rng.random() < config.mutation_probability:
        return mutate(individual, generator, config, rng)
    return individual.copy()
