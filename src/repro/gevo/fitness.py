"""Fitness evaluation harness.

GEVO's fitness function is the kernel execution time averaged across all
test cases; a variant that fails any test case is invalid and excluded
from the fitness calculation (Section III-E).  The pieces here are:

* :class:`FitnessResult` -- runtime + validity + per-case details.
* :class:`WorkloadAdapter` -- the interface a workload (ADEPT, SIMCoV, or a
  user's own kernel) implements so GEVO, the baselines and the analysis
  algorithms can all drive it.
* :class:`GenomeEvaluator` -- applies a genome to the original module and
  runs the adapter's fitness tests, memoising results by edit-key so
  repeated evaluations of identical genomes (common under elitism) are free.
* :class:`EditSetEvaluator` -- the ``f(S)`` function of Algorithms 1 and 2,
  evaluating arbitrary *sets* of edits with caching; used by the
  minimization and epistasis analyses.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..ir.function import Module
from .edits import Edit
from .genome import Individual, apply_edits


@dataclass
class CaseResult:
    """Outcome of one test case."""

    name: str
    passed: bool
    runtime_ms: float
    message: str = ""


@dataclass
class FitnessResult:
    """Outcome of evaluating one program variant."""

    valid: bool
    #: Mean kernel runtime over the passing test cases (ms); ``inf`` when invalid.
    runtime_ms: float
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def fitness(self) -> float:
        return self.runtime_ms if self.valid else math.inf

    def failures(self) -> List[CaseResult]:
        return [case for case in self.cases if not case.passed]

    @classmethod
    def from_cases(cls, cases: Sequence[CaseResult]) -> "FitnessResult":
        cases = list(cases)
        valid = all(case.passed for case in cases) and bool(cases)
        if valid:
            runtime = sum(case.runtime_ms for case in cases) / len(cases)
        else:
            runtime = math.inf
        return cls(valid=valid, runtime_ms=runtime, cases=cases)

    @classmethod
    def invalid(cls, message: str) -> "FitnessResult":
        return cls(valid=False, runtime_ms=math.inf,
                   cases=[CaseResult("error", False, math.inf, message)])


class WorkloadAdapter(abc.ABC):
    """Interface between GEVO and a concrete GPU workload."""

    #: Human-readable workload name ("ADEPT-V1 on P100", ...).
    name: str = "workload"

    @abc.abstractmethod
    def original_module(self) -> Module:
        """The unmodified program GEVO starts from."""

    @abc.abstractmethod
    def evaluate(self, module: Module) -> FitnessResult:
        """Run the fitness test cases against *module*."""

    def validate(self, module: Module) -> FitnessResult:
        """Run the held-out validation tests (defaults to the fitness tests)."""
        return self.evaluate(module)

    # -- convenience ---------------------------------------------------------------
    def baseline(self) -> FitnessResult:
        """Fitness of the unmodified program."""
        return self.evaluate(self.original_module())


class GenomeEvaluator:
    """Evaluates individuals against a workload adapter with memoisation."""

    def __init__(self, adapter: WorkloadAdapter):
        self.adapter = adapter
        self._original = adapter.original_module()
        self._cache: Dict[Tuple, FitnessResult] = {}
        self.evaluations = 0
        self.cache_hits = 0

    @property
    def original(self) -> Module:
        return self._original

    def evaluate_individual(self, individual: Individual) -> FitnessResult:
        """Evaluate *individual*, filling in its fitness/validity fields."""
        key = individual.edit_keys()
        result = self._cache.get(key)
        if result is None:
            result = self.evaluate_edits(individual.edits)
            self._cache[key] = result
        else:
            self.cache_hits += 1
        individual.mark_evaluated(
            result.runtime_ms if result.valid else None, result.valid)
        return result

    def evaluate_edits(self, edits: Sequence[Edit]) -> FitnessResult:
        """Apply *edits* to a clone of the original and run the fitness tests."""
        self.evaluations += 1
        applied = apply_edits(self._original, edits)
        return self.adapter.evaluate(applied.module)

    def evaluate_population(self, population: Sequence[Individual]) -> None:
        for individual in population:
            if individual.needs_evaluation():
                self.evaluate_individual(individual)


class EditSetEvaluator:
    """The ``f(S)`` oracle used by Algorithms 1 and 2 of the paper.

    Evaluates the program with an arbitrary *set* of edits applied (order is
    the original discovery order restricted to the subset), caching results
    by frozen edit-key set.  ``f(S)`` returns the mean runtime in
    milliseconds or ``math.inf`` when the variant fails its tests.
    """

    def __init__(self, adapter: WorkloadAdapter, universe: Sequence[Edit]):
        self.adapter = adapter
        self.universe = list(universe)
        self._original = adapter.original_module()
        self._cache: Dict[FrozenSet, FitnessResult] = {}
        self.evaluations = 0

    def _ordered_subset(self, edits: Sequence[Edit]) -> List[Edit]:
        wanted = {edit.key() for edit in edits}
        ordered = [edit for edit in self.universe if edit.key() in wanted]
        # Edits outside the universe (possible when callers construct novel
        # subsets) are appended in the order given.
        known = {edit.key() for edit in ordered}
        ordered.extend(edit for edit in edits if edit.key() not in known)
        return ordered

    def result(self, edits: Sequence[Edit]) -> FitnessResult:
        key = frozenset(edit.key() for edit in edits)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.evaluations += 1
        applied = apply_edits(self._original, self._ordered_subset(edits))
        result = self.adapter.evaluate(applied.module)
        self._cache[key] = result
        return result

    def fitness(self, edits: Sequence[Edit]) -> float:
        """``f(S)``: mean runtime (ms) of the program with *edits* applied."""
        return self.result(edits).fitness

    def fails(self, edits: Sequence[Edit]) -> bool:
        """True when the variant with *edits* applied fails its test cases."""
        return not self.result(edits).valid

    def baseline_fitness(self) -> float:
        """``f(empty set)``: runtime of the unmodified program."""
        return self.fitness([])
