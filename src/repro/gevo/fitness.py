"""Fitness evaluation harness.

GEVO's fitness function is the kernel execution time averaged across all
test cases; a variant that fails any test case is invalid and excluded
from the fitness calculation (Section III-E).  The pieces here are:

* :class:`FitnessResult` -- runtime + validity + per-case details.
* :class:`WorkloadAdapter` -- the interface a workload (ADEPT, SIMCoV, or a
  user's own kernel) implements so GEVO, the baselines and the analysis
  algorithms can all drive it.
* :class:`GenomeEvaluator` -- applies a genome to the original module and
  runs the adapter's fitness tests, memoising results by canonical
  (order-insensitive) edit-set key so repeated evaluations of identical
  genomes (common under elitism) are free.
* :class:`EditSetEvaluator` -- the ``f(S)`` function of Algorithms 1 and 2,
  evaluating arbitrary *sets* of edits with caching; used by the
  minimization and epistasis analyses.

Both evaluators route every evaluation through a
:class:`repro.runtime.engine.EvaluationEngine`, which owns the cache
(shared canonical keys with :mod:`repro.runtime.cache`, optionally
disk-persisted) and the execution strategy (serial or process-pool).  By
default each evaluator builds its own serial in-memory engine, so the
historical single-threaded behaviour is unchanged; pass ``engine=`` to
share a cache across evaluators or to evaluate in parallel.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import List, Sequence

from ..ir.function import Module
from .edits import Edit
from .genome import Individual


@dataclass
class CaseResult:
    """Outcome of one test case."""

    name: str
    passed: bool
    runtime_ms: float
    message: str = ""


@dataclass
class FitnessResult:
    """Outcome of evaluating one program variant."""

    valid: bool
    #: Mean kernel runtime over the passing test cases (ms); ``inf`` when invalid.
    runtime_ms: float
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def fitness(self) -> float:
        return self.runtime_ms if self.valid else math.inf

    def failures(self) -> List[CaseResult]:
        return [case for case in self.cases if not case.passed]

    @classmethod
    def from_cases(cls, cases: Sequence[CaseResult]) -> "FitnessResult":
        cases = list(cases)
        valid = all(case.passed for case in cases) and bool(cases)
        if valid:
            runtime = sum(case.runtime_ms for case in cases) / len(cases)
        else:
            runtime = math.inf
        return cls(valid=valid, runtime_ms=runtime, cases=cases)

    @classmethod
    def invalid(cls, message: str) -> "FitnessResult":
        return cls(valid=False, runtime_ms=math.inf,
                   cases=[CaseResult("error", False, math.inf, message)])


class WorkloadAdapter(abc.ABC):
    """Interface between GEVO and a concrete GPU workload."""

    #: Human-readable workload name ("ADEPT-V1 on P100", ...).
    name: str = "workload"

    @abc.abstractmethod
    def original_module(self) -> Module:
        """The unmodified program GEVO starts from."""

    @abc.abstractmethod
    def evaluate(self, module: Module) -> FitnessResult:
        """Run the fitness test cases against *module*."""

    def validate(self, module: Module) -> FitnessResult:
        """Run the held-out validation tests (defaults to the fitness tests)."""
        return self.evaluate(module)

    def evaluate_batched(self, modules: Sequence[Module]) -> List[FitnessResult]:
        """Fitness of N co-batchable variants, bit-for-bit equal to
        mapping :meth:`evaluate` over *modules*.

        Adapters whose device path supports stacked launches override
        this; the default just evaluates sequentially, so the engine can
        hand any adapter a batch group without special-casing.
        """
        return [self.evaluate(module) for module in modules]

    # -- convenience ---------------------------------------------------------------
    def baseline(self) -> FitnessResult:
        """Fitness of the unmodified program."""
        return self.evaluate(self.original_module())


def _default_engine(adapter: WorkloadAdapter):
    # Imported lazily: repro.runtime builds on the types defined above.
    from ..runtime.engine import EvaluationEngine

    return EvaluationEngine(adapter)


class GenomeEvaluator:
    """Evaluates individuals against a workload adapter with memoisation.

    Evaluation flows through an :class:`~repro.runtime.engine.EvaluationEngine`
    whose cache key is *canonical* -- order-insensitive over the edit
    multiset -- so permuted but identical edit lists share one entry.  The
    ``evaluations`` / ``cache_hits`` counters report this evaluator's own
    activity even when the engine is shared with other evaluators.

    Contract: a variant's identity is its edit **multiset**, following the
    paper's set-based ``f(S)`` treatment (the seed's ``EditSetEvaluator``
    already keyed by frozen edit-key set).  In the rare case where two
    orderings of the same multiset replay to different programs (tolerant
    skipping makes ``apply_edits`` order-sensitive when edits interact),
    the first ordering evaluated defines the cached fitness for all of
    them; ``validate_best`` style replays of a specific individual's edit
    list still use that individual's true order, so a divergent variant
    surfaces as a validation failure rather than silently shipping.
    """

    def __init__(self, adapter: WorkloadAdapter, *, engine=None):
        self.adapter = adapter
        self.engine = engine if engine is not None else _default_engine(adapter)
        self._original = self.engine.original
        self._evaluations_offset = self.engine.evaluations
        self._hits_offset = self.engine.cache_hits

    @property
    def original(self) -> Module:
        return self._original

    @property
    def evaluations(self) -> int:
        """Adapter evaluations actually executed on this evaluator's behalf."""
        return self.engine.evaluations - self._evaluations_offset

    @property
    def cache_hits(self) -> int:
        return self.engine.cache_hits - self._hits_offset

    def evaluate_individual(self, individual: Individual, *,
                            ledger=None) -> FitnessResult:
        """Evaluate *individual*, filling in its fitness/validity fields.

        ``ledger`` is an optional
        :class:`~repro.runtime.checkpoint.EvaluationLedger`; the
        individual's canonical key is charged only after the evaluation
        succeeds, so a crash mid-evaluation leaves nothing charged and
        the replayed attempt charges it exactly once.
        """
        result = self.engine.evaluate(individual.edits)
        if ledger is not None:
            ledger.charge([self.engine.cache_key(individual.edits).to_string()])
        individual.mark_evaluated(
            result.runtime_ms if result.valid else None, result.valid)
        return result

    def evaluate_edits(self, edits: Sequence[Edit]) -> FitnessResult:
        """Evaluate one edit list (through the engine's cache)."""
        return self.engine.evaluate(edits)

    def evaluate_population(self, population: Sequence[Individual], *,
                            ledger=None) -> None:
        """Evaluate every unevaluated individual as one concurrent batch.

        With a ``ledger``, the batch's canonical keys are charged after
        the batch evaluates (never on a raising batch): crash-exact
        evaluation accounting for the checkpointable searches.
        """
        pending = [ind for ind in population if ind.needs_evaluation()]
        if not pending:
            return
        results = self.engine.evaluate_many([ind.edits for ind in pending])
        if ledger is not None:
            ledger.charge(self.engine.cache_key(ind.edits).to_string()
                          for ind in pending)
        for individual, result in zip(pending, results):
            individual.mark_evaluated(
                result.runtime_ms if result.valid else None, result.valid)


class EditSetEvaluator:
    """The ``f(S)`` oracle used by Algorithms 1 and 2 of the paper.

    Evaluates the program with an arbitrary *set* of edits applied (order is
    the original discovery order restricted to the subset), caching results
    by frozen edit-key set.  ``f(S)`` returns the mean runtime in
    milliseconds or ``math.inf`` when the variant fails its tests.
    """

    def __init__(self, adapter: WorkloadAdapter, universe: Sequence[Edit], *,
                 engine=None):
        self.adapter = adapter
        self.universe = list(universe)
        self.engine = engine if engine is not None else _default_engine(adapter)
        self._original = self.engine.original
        self._evaluations_offset = self.engine.evaluations

    @property
    def evaluations(self) -> int:
        """Adapter evaluations actually executed on this evaluator's behalf."""
        return self.engine.evaluations - self._evaluations_offset

    def _ordered_subset(self, edits: Sequence[Edit]) -> List[Edit]:
        wanted = {edit.key() for edit in edits}
        ordered = [edit for edit in self.universe if edit.key() in wanted]
        # Edits outside the universe (possible when callers construct novel
        # subsets) are appended in the order given.
        known = {edit.key() for edit in ordered}
        ordered.extend(edit for edit in edits if edit.key() not in known)
        return ordered

    def result(self, edits: Sequence[Edit]) -> FitnessResult:
        return self.engine.evaluate(self._ordered_subset(edits))

    def results(self, edit_sets: Sequence[Sequence[Edit]]) -> List[FitnessResult]:
        """Evaluate many subsets as one concurrent wave (input order preserved)."""
        return self.engine.evaluate_many(
            [self._ordered_subset(edits) for edits in edit_sets])

    def fitness(self, edits: Sequence[Edit]) -> float:
        """``f(S)``: mean runtime (ms) of the program with *edits* applied."""
        return self.result(edits).fitness

    def fails(self, edits: Sequence[Edit]) -> bool:
        """True when the variant with *edits* applied fails its test cases."""
        return not self.result(edits).valid

    def baseline_fitness(self) -> float:
        """``f(empty set)``: runtime of the unmodified program."""
        return self.fitness([])
