"""GEVO: evolutionary search over mini-IR GPU kernels.

Typical usage::

    from repro.gevo import GevoConfig, GevoSearch

    search = GevoSearch(adapter, GevoConfig.quick(seed=1))
    result = search.run()
    print(result.speedup, len(result.best.edits))

where ``adapter`` is a :class:`WorkloadAdapter` (see
:mod:`repro.workloads.adept` and :mod:`repro.workloads.simcov` for the two
paper workloads, or implement your own for a custom kernel).
"""

from .config import DEFAULT_EDIT_WEIGHTS, GevoConfig
from .crossover import maybe_crossover, one_point_crossover, uniform_crossover
from .edits import (
    Edit,
    InstructionCopy,
    InstructionDelete,
    InstructionMove,
    InstructionReplace,
    InstructionSwap,
    OperandReplace,
    edit_from_dict,
    edit_kinds,
)
from .fitness import (
    CaseResult,
    EditSetEvaluator,
    FitnessResult,
    GenomeEvaluator,
    WorkloadAdapter,
)
from .genome import AppliedGenome, Individual, apply_edits, seed_population, unique_edit_keys
from .history import GenerationRecord, SearchHistory, merge_speedup_distributions
from .mutation import EditGenerator, maybe_mutate, mutate
from .search import GevoSearch, SearchResult, run_repeated_searches
from .selection import best_individual, rank_population, select_elites, tournament_select

__all__ = [
    "AppliedGenome",
    "CaseResult",
    "DEFAULT_EDIT_WEIGHTS",
    "Edit",
    "EditGenerator",
    "EditSetEvaluator",
    "FitnessResult",
    "GenerationRecord",
    "GenomeEvaluator",
    "GevoConfig",
    "GevoSearch",
    "Individual",
    "InstructionCopy",
    "InstructionDelete",
    "InstructionMove",
    "InstructionReplace",
    "InstructionSwap",
    "OperandReplace",
    "SearchHistory",
    "SearchResult",
    "WorkloadAdapter",
    "apply_edits",
    "best_individual",
    "edit_from_dict",
    "edit_kinds",
    "maybe_crossover",
    "maybe_mutate",
    "merge_speedup_distributions",
    "mutate",
    "one_point_crossover",
    "rank_population",
    "run_repeated_searches",
    "seed_population",
    "select_elites",
    "tournament_select",
    "unique_edit_keys",
    "uniform_crossover",
]
