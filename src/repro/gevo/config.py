"""Configuration of the GEVO search.

The defaults of :meth:`GevoConfig.paper_adept` and
:meth:`GevoConfig.paper_simcov` match Section III-E of the paper
(population 256, elitism 4, crossover 80%, mutation 30% per individual per
generation, ~300 generations for ADEPT and ~130 for SIMCoV).  Because the
simulated GPU runs many orders of magnitude slower than silicon, tests,
examples and benchmarks use :meth:`GevoConfig.quick` -- the same algorithm
at a much smaller scale -- and EXPERIMENTS.md records the scaling used for
every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..errors import SearchError

#: Default relative probabilities of generating each edit kind during mutation.
DEFAULT_EDIT_WEIGHTS: Dict[str, float] = {
    "operand": 0.35,
    "delete": 0.20,
    "copy": 0.15,
    "replace": 0.15,
    "move": 0.10,
    "swap": 0.05,
}


@dataclass(frozen=True)
class GevoConfig:
    """Hyper-parameters of one GEVO run."""

    population_size: int = 256
    generations: int = 300
    crossover_probability: float = 0.8
    mutation_probability: float = 0.3
    elitism: int = 4
    tournament_size: int = 3
    seed: Optional[int] = None
    #: Probability split inside a mutation event.
    mutation_add_probability: float = 0.7
    mutation_remove_probability: float = 0.15
    mutation_rewrite_probability: float = 0.15
    #: Relative weights of edit kinds when generating a new random edit.
    edit_weights: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_EDIT_WEIGHTS))
    #: Hard cap on genome length (0 disables the cap).
    max_edits_per_individual: int = 0
    #: Stop early if the best fitness has not improved for this many
    #: generations (0 disables early stopping).
    stagnation_limit: int = 0

    def __post_init__(self):
        if self.population_size < 2:
            raise SearchError("population_size must be at least 2")
        if self.generations < 1:
            raise SearchError("generations must be at least 1")
        if not 0.0 <= self.crossover_probability <= 1.0:
            raise SearchError("crossover_probability must be within [0, 1]")
        if not 0.0 <= self.mutation_probability <= 1.0:
            raise SearchError("mutation_probability must be within [0, 1]")
        if self.elitism < 0 or self.elitism > self.population_size:
            raise SearchError("elitism must be between 0 and population_size")
        if self.tournament_size < 1:
            raise SearchError("tournament_size must be at least 1")
        total = (self.mutation_add_probability + self.mutation_remove_probability
                 + self.mutation_rewrite_probability)
        if abs(total - 1.0) > 1e-9:
            raise SearchError("mutation add/remove/rewrite probabilities must sum to 1")

    def with_(self, **changes) -> "GevoConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **changes)

    # -- presets -------------------------------------------------------------------
    @classmethod
    def paper_adept(cls, seed: Optional[int] = None) -> "GevoConfig":
        """The configuration used for ADEPT in the paper (7-day budget)."""
        return cls(population_size=256, generations=300, crossover_probability=0.8,
                   mutation_probability=0.3, elitism=4, seed=seed)

    @classmethod
    def paper_simcov(cls, seed: Optional[int] = None) -> "GevoConfig":
        """The configuration used for SIMCoV in the paper (2-day budget)."""
        return cls(population_size=256, generations=130, crossover_probability=0.8,
                   mutation_probability=0.3, elitism=4, seed=seed)

    @classmethod
    def quick(cls, seed: Optional[int] = None, *, population_size: int = 16,
              generations: int = 10) -> "GevoConfig":
        """A scaled-down configuration suitable for tests and benchmarks."""
        return cls(population_size=population_size, generations=generations,
                   crossover_probability=0.8, mutation_probability=0.5,
                   elitism=2, tournament_size=2, seed=seed)
