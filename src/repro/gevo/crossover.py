"""Crossover (recombination) of GEVO genomes.

GEVO uses a messy one-point crossover over the variable-length edit lists:
each child takes a prefix of one parent and a suffix of the other, with the
cut points chosen independently.  This is how interdependent edits
discovered in different individuals can be combined into one genome -- the
mechanism behind the assembly of the epistatic clusters analysed in
Section V of the paper.
"""

from __future__ import annotations

import random
from typing import Tuple

from .config import GevoConfig
from .genome import Individual


def one_point_crossover(parent_a: Individual, parent_b: Individual,
                        rng: random.Random) -> Tuple[Individual, Individual]:
    """Messy one-point crossover: independent cut points in each parent."""
    edits_a, edits_b = parent_a.edits, parent_b.edits
    cut_a = rng.randint(0, len(edits_a))
    cut_b = rng.randint(0, len(edits_b))
    child_one = Individual(edits=list(edits_a[:cut_a]) + list(edits_b[cut_b:]))
    child_two = Individual(edits=list(edits_b[:cut_b]) + list(edits_a[cut_a:]))
    return child_one, child_two


def uniform_crossover(parent_a: Individual, parent_b: Individual,
                      rng: random.Random) -> Tuple[Individual, Individual]:
    """Uniform crossover over the union of both edit lists (ablation variant)."""
    union = list(parent_a.edits) + list(parent_b.edits)
    child_one = Individual(edits=[edit for edit in union if rng.random() < 0.5])
    child_two = Individual(edits=[edit for edit in union if rng.random() < 0.5])
    return child_one, child_two


def maybe_crossover(parent_a: Individual, parent_b: Individual,
                    config: GevoConfig, rng: random.Random,
                    operator=one_point_crossover) -> Tuple[Individual, Individual]:
    """Apply *operator* with the configured crossover probability.

    Without crossover the children are plain copies of the parents (they may
    still be mutated afterwards).
    """
    if rng.random() < config.crossover_probability:
        return operator(parent_a, parent_b, rng)
    return parent_a.copy(), parent_b.copy()
