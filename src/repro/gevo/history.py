"""Search-history recording.

The paper's Figures 6 and 8 are built from the *history* of GEVO runs: the
per-generation best fitness (to plot speedup trajectories and their
distribution over repeated runs) and the generation at which each edit of
interest first appeared in the best individual (the "discovery sequence"
of the epistatic cluster).  :class:`SearchHistory` records exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .genome import Individual


@dataclass
class GenerationRecord:
    """Summary of one generation."""

    generation: int
    best_fitness: Optional[float]
    mean_fitness: Optional[float]
    valid_count: int
    population_size: int
    best_edit_keys: Tuple[Tuple, ...] = ()
    evaluations: int = 0

    def speedup_over(self, baseline_runtime: float) -> Optional[float]:
        if self.best_fitness is None or self.best_fitness <= 0:
            return None
        return baseline_runtime / self.best_fitness


@dataclass
class SearchHistory:
    """Chronological record of a GEVO run."""

    baseline_runtime: float
    records: List[GenerationRecord] = field(default_factory=list)
    #: Edit key -> generation at which the edit first appeared in the best individual.
    first_seen_in_best: Dict[Tuple, int] = field(default_factory=dict)
    #: Edit key -> generation at which the edit first appeared anywhere in the population.
    first_seen_in_population: Dict[Tuple, int] = field(default_factory=dict)

    def record_generation(self, generation: int, population: Sequence[Individual],
                          best: Optional[Individual], evaluations: int) -> GenerationRecord:
        valid = [ind for ind in population if ind.valid and ind.fitness is not None]
        mean_fitness = (sum(ind.fitness for ind in valid) / len(valid)) if valid else None
        record = GenerationRecord(
            generation=generation,
            best_fitness=best.fitness if best is not None else None,
            mean_fitness=mean_fitness,
            valid_count=len(valid),
            population_size=len(population),
            best_edit_keys=best.edit_keys() if best is not None else (),
            evaluations=evaluations,
        )
        self.records.append(record)
        for individual in population:
            for key in individual.edit_keys():
                self.first_seen_in_population.setdefault(key, generation)
        if best is not None:
            for key in best.edit_keys():
                self.first_seen_in_best.setdefault(key, generation)
        return record

    # -- queries -----------------------------------------------------------------------
    def generations(self) -> int:
        return len(self.records)

    def best_fitness_series(self) -> List[Optional[float]]:
        return [record.best_fitness for record in self.records]

    def speedup_series(self) -> List[Optional[float]]:
        """Per-generation speedup of the best individual over the baseline."""
        return [record.speedup_over(self.baseline_runtime) for record in self.records]

    def final_speedup(self) -> Optional[float]:
        for record in reversed(self.records):
            speedup = record.speedup_over(self.baseline_runtime)
            if speedup is not None:
                return speedup
        return None

    def discovery_generation(self, edit_key: Tuple, *, in_best: bool = True) -> Optional[int]:
        """Generation at which an edit was first discovered (None if never)."""
        table = self.first_seen_in_best if in_best else self.first_seen_in_population
        return table.get(edit_key)

    def discovery_sequence(self, edit_keys: Sequence[Tuple],
                           *, in_best: bool = True) -> List[Tuple[Tuple, Optional[int]]]:
        """Discovery generations for *edit_keys*, sorted by generation (Figure 8)."""
        pairs = [(key, self.discovery_generation(key, in_best=in_best)) for key in edit_keys]
        return sorted(pairs, key=lambda item: (item[1] is None, item[1]))


def merge_speedup_distributions(histories: Sequence[SearchHistory]) -> Dict[str, List[float]]:
    """Aggregate final speedups across runs (Figure 6 statistics).

    Returns the final speedup of every run plus min / max / mean, ignoring
    runs that never produced a valid individual.
    """
    finals = [history.final_speedup() for history in histories]
    finals = [value for value in finals if value is not None]
    if not finals:
        return {"finals": [], "min": [], "max": [], "mean": []}
    return {
        "finals": finals,
        "min": [min(finals)],
        "max": [max(finals)],
        "mean": [sum(finals) / len(finals)],
    }
