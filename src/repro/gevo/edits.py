"""GEVO edit operators over the mini-IR.

GEVO represents an individual as an ordered list of *edits* applied to the
original kernel module.  The edit vocabulary follows the paper (Section
II-A): an edit either operates on a whole instruction -- copy, delete,
move, replace, swap -- or replaces one operand of an instruction with
another value already present in the kernel.

Edits address instructions by their stable *uid*, so the same edit list can
be replayed on a fresh clone of the original module (which is how fitness
evaluation, edit minimization and the epistasis analysis all work).
Applying an edit can fail -- for example the targeted instruction was
removed by an earlier edit -- in which case :class:`~repro.errors.EditError`
is raised and the caller decides whether to skip the edit or invalidate the
individual.

Terminators (``br`` / ``condbr`` / ``ret``) are *pinned*: they may not be
deleted, moved, replaced or copied.  This keeps every variant structurally
executable, mirroring GEVO's LLVM-level restrictions; variants can still be
semantically wrong and fail their test cases.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from ..errors import EditError
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import Instruction
from ..ir.values import Const, Reg, Value, as_value


def _locate(module: Module, uid: int, edit: "Edit") -> Tuple[Function, BasicBlock, int]:
    found = module.find_instruction(uid)
    if found is None:
        raise EditError(f"instruction uid={uid} not present in module", edit)
    return found


def _check_not_pinned(instruction: Instruction, edit: "Edit", action: str) -> None:
    if instruction.info.pinned:
        raise EditError(f"cannot {action} pinned instruction {instruction.opcode!r}", edit)


class Edit(abc.ABC):
    """Base class of all GEVO edits."""

    #: Short tag used in textual descriptions and serialisation.
    kind: str = "edit"

    @abc.abstractmethod
    def apply(self, module: Module) -> None:
        """Apply the edit to *module* in place; raise :class:`EditError` on failure."""

    @abc.abstractmethod
    def key(self) -> Tuple:
        """Hashable identity of the edit (used for dedup and discovery tracking)."""

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (used for recorded edit sets)."""

    def describe(self, module: Optional[Module] = None) -> str:
        """Human-readable description, optionally annotated with source locations."""
        text = f"{self.kind}({', '.join(str(v) for v in self.key()[1:])})"
        if module is not None:
            uid = self.key()[1] if len(self.key()) > 1 else None
            if isinstance(uid, int):
                found = module.find_instruction(uid)
                if found is not None:
                    _, block, index = found
                    inst = block.instructions[index]
                    if inst.loc is not None:
                        text += f" @ {inst.loc}"
        return text

    def __eq__(self, other) -> bool:
        return isinstance(other, Edit) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return self.describe()


class InstructionDelete(Edit):
    """Remove one instruction."""

    kind = "delete"

    def __init__(self, target_uid: int):
        self.target_uid = int(target_uid)

    def apply(self, module: Module) -> None:
        _, block, index = _locate(module, self.target_uid, self)
        instruction = block.instructions[index]
        _check_not_pinned(instruction, self, "delete")
        del block.instructions[index]

    def key(self) -> Tuple:
        return (self.kind, self.target_uid)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "target_uid": self.target_uid}


class InstructionCopy(Edit):
    """Insert a copy of one instruction immediately before another."""

    kind = "copy"

    def __init__(self, source_uid: int, before_uid: int):
        self.source_uid = int(source_uid)
        self.before_uid = int(before_uid)

    def apply(self, module: Module) -> None:
        _, source_block, source_index = _locate(module, self.source_uid, self)
        source = source_block.instructions[source_index]
        _check_not_pinned(source, self, "copy")
        _, dest_block, dest_index = _locate(module, self.before_uid, self)
        dest_block.insert(dest_index, source.duplicate())

    def key(self) -> Tuple:
        return (self.kind, self.source_uid, self.before_uid)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "source_uid": self.source_uid, "before_uid": self.before_uid}


class InstructionMove(Edit):
    """Move one instruction so it executes immediately before another."""

    kind = "move"

    def __init__(self, source_uid: int, before_uid: int):
        self.source_uid = int(source_uid)
        self.before_uid = int(before_uid)

    def apply(self, module: Module) -> None:
        if self.source_uid == self.before_uid:
            raise EditError("cannot move an instruction before itself", self)
        _, source_block, source_index = _locate(module, self.source_uid, self)
        source = source_block.instructions[source_index]
        _check_not_pinned(source, self, "move")
        del source_block.instructions[source_index]
        try:
            _, dest_block, dest_index = _locate(module, self.before_uid, self)
        except EditError:
            # Restore before propagating so a failed move is a no-op.
            source_block.insert(source_index, source)
            raise
        dest_block.insert(dest_index, source)

    def key(self) -> Tuple:
        return (self.kind, self.source_uid, self.before_uid)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "source_uid": self.source_uid, "before_uid": self.before_uid}


class InstructionReplace(Edit):
    """Replace one instruction with a copy of another.

    The replacement keeps the *target's* destination register when both
    instructions produce a value, which is how GEVO keeps downstream uses
    plausible; otherwise the copy is inserted verbatim.
    """

    kind = "replace"

    def __init__(self, target_uid: int, source_uid: int):
        self.target_uid = int(target_uid)
        self.source_uid = int(source_uid)

    def apply(self, module: Module) -> None:
        if self.target_uid == self.source_uid:
            raise EditError("cannot replace an instruction with itself", self)
        _, source_block, source_index = _locate(module, self.source_uid, self)
        source = source_block.instructions[source_index]
        _check_not_pinned(source, self, "use as replacement")
        _, target_block, target_index = _locate(module, self.target_uid, self)
        target = target_block.instructions[target_index]
        _check_not_pinned(target, self, "replace")
        replacement = source.duplicate()
        if replacement.dest is not None and target.dest is not None:
            replacement.dest = target.dest
        target_block.instructions[target_index] = replacement

    def key(self) -> Tuple:
        return (self.kind, self.target_uid, self.source_uid)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "target_uid": self.target_uid, "source_uid": self.source_uid}


class InstructionSwap(Edit):
    """Exchange the positions of two instructions."""

    kind = "swap"

    def __init__(self, first_uid: int, second_uid: int):
        self.first_uid = int(first_uid)
        self.second_uid = int(second_uid)

    def apply(self, module: Module) -> None:
        if self.first_uid == self.second_uid:
            raise EditError("cannot swap an instruction with itself", self)
        _, first_block, first_index = _locate(module, self.first_uid, self)
        _, second_block, second_index = _locate(module, self.second_uid, self)
        first = first_block.instructions[first_index]
        second = second_block.instructions[second_index]
        _check_not_pinned(first, self, "swap")
        _check_not_pinned(second, self, "swap")
        first_block.instructions[first_index] = second
        second_block.instructions[second_index] = first

    def key(self) -> Tuple:
        return (self.kind, self.first_uid, self.second_uid)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "first_uid": self.first_uid, "second_uid": self.second_uid}


class OperandReplace(Edit):
    """Replace one operand of an instruction with another value.

    This is the edit class behind the paper's most interesting discoveries
    (edits 5, 6, 8 and 10 of ADEPT-V1 all replace an ``if`` condition or an
    index with an existing boolean / index value, Figure 9).
    """

    kind = "operand"

    def __init__(self, target_uid: int, operand_index: int, new_value: Value):
        self.target_uid = int(target_uid)
        self.operand_index = int(operand_index)
        self.new_value = as_value(new_value)

    def apply(self, module: Module) -> None:
        _, block, index = _locate(module, self.target_uid, self)
        instruction = block.instructions[index]
        if not 0 <= self.operand_index < len(instruction.operands):
            raise EditError(
                f"operand index {self.operand_index} out of range for uid={self.target_uid}", self)
        instruction.replace_operand(self.operand_index, self.new_value)

    def key(self) -> Tuple:
        if isinstance(self.new_value, Reg):
            value_key = ("reg", self.new_value.name)
        else:
            value_key = ("const", self.new_value.value)
        return (self.kind, self.target_uid, self.operand_index, value_key)

    def to_dict(self) -> Dict[str, object]:
        if isinstance(self.new_value, Reg):
            value = {"reg": self.new_value.name}
        else:
            value = {"const": self.new_value.value}
        return {"kind": self.kind, "target_uid": self.target_uid,
                "operand_index": self.operand_index, "new_value": value}


_EDIT_CLASSES = {
    cls.kind: cls
    for cls in (InstructionDelete, InstructionCopy, InstructionMove,
                InstructionReplace, InstructionSwap, OperandReplace)
}


def edit_from_dict(data: Dict[str, object]) -> Edit:
    """Reconstruct an edit from its :meth:`Edit.to_dict` form."""
    kind = data.get("kind")
    if kind == "delete":
        return InstructionDelete(data["target_uid"])
    if kind == "copy":
        return InstructionCopy(data["source_uid"], data["before_uid"])
    if kind == "move":
        return InstructionMove(data["source_uid"], data["before_uid"])
    if kind == "replace":
        return InstructionReplace(data["target_uid"], data["source_uid"])
    if kind == "swap":
        return InstructionSwap(data["first_uid"], data["second_uid"])
    if kind == "operand":
        value = data["new_value"]
        if "reg" in value:
            new_value: Value = Reg(value["reg"])
        else:
            new_value = Const(value["const"])
        return OperandReplace(data["target_uid"], data["operand_index"], new_value)
    raise EditError(f"unknown edit kind {kind!r}")


def edit_kinds() -> Tuple[str, ...]:
    """All available edit kinds."""
    return tuple(sorted(_EDIT_CLASSES))
