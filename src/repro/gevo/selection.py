"""Selection operators.

GEVO's fitness is kernel runtime (lower is better); individuals that fail
one or more test cases are invalid and never win a comparison against a
valid individual.  Selection is tournament based, and the configured number
of elite individuals is carried into the next generation unchanged
(Section III-E: "retained the four best individuals").
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from .genome import Individual


def fitness_key(individual: Individual) -> float:
    """Sort key: lower is better, invalid individuals rank last."""
    if not individual.valid or individual.fitness is None:
        return math.inf
    return individual.fitness


def is_better(candidate: Individual, incumbent: Optional[Individual]) -> bool:
    """True when *candidate* strictly beats *incumbent*."""
    if incumbent is None:
        return True
    return fitness_key(candidate) < fitness_key(incumbent)


def best_individual(population: Sequence[Individual]) -> Optional[Individual]:
    """The fittest valid individual, or ``None`` if every individual is invalid."""
    best: Optional[Individual] = None
    for individual in population:
        if individual.valid and is_better(individual, best):
            best = individual
    return best


def rank_population(population: Sequence[Individual]) -> List[Individual]:
    """Population sorted best-first (invalid individuals at the end)."""
    return sorted(population, key=fitness_key)


def select_elites(population: Sequence[Individual], count: int) -> List[Individual]:
    """The *count* best individuals (copied, so elites are never mutated in place)."""
    if count <= 0:
        return []
    ranked = rank_population(population)
    elites = []
    for individual in ranked[:count]:
        clone = individual.copy()
        clone.fitness = individual.fitness
        clone.valid = individual.valid
        elites.append(clone)
    return elites


def tournament_select(population: Sequence[Individual], tournament_size: int,
                      rng: random.Random) -> Individual:
    """Pick the best of ``tournament_size`` uniformly sampled individuals."""
    size = min(tournament_size, len(population))
    contenders = rng.sample(list(population), size)
    winner = contenders[0]
    for contender in contenders[1:]:
        if fitness_key(contender) < fitness_key(winner):
            winner = contender
    return winner


def select_parents(population: Sequence[Individual], count: int,
                   tournament_size: int, rng: random.Random) -> List[Individual]:
    """Select *count* parents by repeated tournaments."""
    return [tournament_select(population, tournament_size, rng) for _ in range(count)]
