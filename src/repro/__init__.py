"""repro: reproduction of "Understanding the Power of Evolutionary Computation
for GPU Code Optimization" (IISWC 2022).

The package is organised as:

* :mod:`repro.ir` -- the mini GPU IR that GEVO's operators mutate.
* :mod:`repro.gpu` -- the simulated P100 / 1080Ti / V100 devices.
* :mod:`repro.gevo` -- the evolutionary search (edits, operators, fitness, loop).
* :mod:`repro.analysis` -- edit minimization, epistasis and discovery analyses.
* :mod:`repro.workloads` -- the ADEPT and SIMCoV applications.
* :mod:`repro.baselines` -- non-evolutionary search baselines.
* :mod:`repro.experiments` -- one module per paper table / figure.
* :mod:`repro.runtime` -- the evaluation runtime: process-pool execution,
  persistent fitness cache, search checkpoint/resume.
"""

from .errors import (
    EditError,
    IRError,
    IRParseError,
    IRVerificationError,
    KernelTrap,
    LaunchError,
    ReproError,
    SearchError,
    SimulatorError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "EditError",
    "IRError",
    "IRParseError",
    "IRVerificationError",
    "KernelTrap",
    "LaunchError",
    "ReproError",
    "SearchError",
    "SimulatorError",
    "ValidationError",
    "__version__",
]
