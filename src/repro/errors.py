"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause.
The GPU simulator distinguishes *traps* (runtime faults inside a simulated
kernel, analogous to a CUDA fault or segmentation fault) from host-side
usage errors, because GEVO treats trapped kernel variants as "failed the
test case" rather than as programming errors in the harness itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IRError(ReproError):
    """Base class for errors related to the mini-IR."""


class IRParseError(IRError):
    """Raised when the textual IR form cannot be parsed."""


class IRVerificationError(IRError):
    """Raised when a module fails structural verification."""


class EditError(ReproError):
    """Raised when a GEVO edit cannot be applied to a module.

    GEVO treats un-appliable edits as benign: the individual carrying them
    is simply invalid for this generation.  The error therefore carries the
    offending edit for diagnostics.
    """

    def __init__(self, message: str, edit=None):
        super().__init__(message)
        self.edit = edit


class SimulatorError(ReproError):
    """Base class for errors raised by the GPU simulator."""


class KernelTrap(SimulatorError):
    """A simulated kernel performed an illegal operation.

    Examples: out-of-bounds global/shared memory access, use of an
    undefined register, division by zero, exceeding the dynamic
    instruction budget (runaway loop).  Equivalent to a CUDA error /
    segfault on real hardware: the variant fails its test case.
    """

    def __init__(self, message: str, *, block=None, warp=None, instruction=None):
        super().__init__(message)
        self.block = block
        self.warp = warp
        self.instruction = instruction


class LaunchError(SimulatorError):
    """Raised for host-side launch misconfiguration (bad grid, missing args)."""


class ValidationError(ReproError):
    """Raised when workload output validation cannot be performed."""


class SearchError(ReproError):
    """Raised for configuration errors in the GEVO search driver."""


class ExecutorError(ReproError):
    """An evaluation batch failed inside an :class:`~repro.runtime.engine.Executor`.

    Raised when a worker raises or dies mid-batch (e.g. a worker process
    killed by the OOM killer, or an exception escaping an async task).
    The engine guarantees that a batch which raises leaves the fitness
    cache untouched -- no partial results are ever stored -- so callers
    can retry the batch or abort without corrupting persisted state.
    """
