"""SIMCoV: the agent-based SARS-CoV-2 lung-infection simulation (paper Section II-C).

Public surface:

* parameters / state: :class:`SimCovParams`, :class:`SimCovState`
* CPU reference model: :func:`run_reference`, :func:`reference_trajectory`
* GPU kernels: :func:`build_simcov_kernels`, :class:`SimCovKernels`
* host driver / GEVO adapter: :class:`SimCovDriver`, :class:`SimCovWorkloadAdapter`
* recorded GEVO edits: :func:`simcov_discovered_edits`,
  :func:`boundary_check_removal_edits`, :func:`redundant_load_removal_edits`
* the safe padding alternative: :func:`build_padded_spread_kernel`, :func:`run_padded_spread`
* validation: :func:`states_close`, :func:`compare_states`
"""

from .discovered import (
    SPREAD_KERNELS,
    boundary_check_removal_edits,
    redundant_load_removal_edits,
    simcov_discovered_edits,
    single_direction_edits,
)
from .driver import ARENA_GUARD_ELEMENTS, SimCovDriver, SimCovRunResult, SimCovWorkloadAdapter
from .kernels import BLOCK_THREADS, DIRECTIONS, SimCovKernels, build_simcov_kernels
from .padding import (
    PaddedSpreadResult,
    build_padded_spread_kernel,
    pad_field,
    run_padded_spread,
    unpad_field,
)
from .params import (
    APOPTOTIC,
    DEAD,
    EXPRESSING,
    HEALTHY,
    INCUBATING,
    STATE_NAMES,
    SimCovParams,
)
from .reference import (
    diffuse,
    extravasate_tcells,
    move_tcells,
    produce_virions,
    reference_trajectory,
    run_reference,
    spread_fields,
    step,
    update_epithelial,
)
from .state import SimCovState
from .validation import FieldDeviation, compare_states, field_deviation, states_close, summaries_close

__all__ = [
    "APOPTOTIC",
    "ARENA_GUARD_ELEMENTS",
    "BLOCK_THREADS",
    "DEAD",
    "DIRECTIONS",
    "EXPRESSING",
    "FieldDeviation",
    "HEALTHY",
    "INCUBATING",
    "PaddedSpreadResult",
    "STATE_NAMES",
    "SPREAD_KERNELS",
    "SimCovDriver",
    "SimCovKernels",
    "SimCovParams",
    "SimCovRunResult",
    "SimCovState",
    "SimCovWorkloadAdapter",
    "boundary_check_removal_edits",
    "build_padded_spread_kernel",
    "build_simcov_kernels",
    "compare_states",
    "diffuse",
    "extravasate_tcells",
    "field_deviation",
    "move_tcells",
    "pad_field",
    "produce_virions",
    "redundant_load_removal_edits",
    "reference_trajectory",
    "run_padded_spread",
    "run_reference",
    "simcov_discovered_edits",
    "single_direction_edits",
    "spread_fields",
    "states_close",
    "step",
    "summaries_close",
    "unpad_field",
    "update_epithelial",
]
