"""CPU reference implementation of the SIMCoV model.

This is the ground-truth oracle used to validate the GPU kernels and every
GEVO variant of them, mirroring the paper's methodology: the simulation is
run with a fixed random seed and the unmodified program's output is taken
as ground truth (Section III-C).  The reference and the GPU kernels share
the counter-based RNG (:mod:`repro.gpu.rng`) and follow the same update
order, so -- up to T-cell movement races, which the tolerance-based
validation absorbs -- they produce matching trajectories.

Per step, the update order is (matching the GPU kernel launch order):

1. T-cell extravasation driven by the inflammatory signal.
2. T-cell death and random movement (conflicts resolved in cell order).
3. Epithelial state machine update.
4. Virion / inflammatory-signal production by infected cells.
5. Virion diffusion with boundary handling.
6. Inflammatory-signal diffusion with boundary handling.
7. Summary statistics.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ...gpu.rng import counter_uniform
from .params import APOPTOTIC, DEAD, EXPRESSING, HEALTHY, INCUBATING, SimCovParams
from .state import SimCovState

#: Probability that a T cell dies in a given step (matches the GPU kernel).
TCELL_DEATH_PROBABILITY = 0.05

#: RNG stream identifiers, shared with the GPU kernels.
RNG_STREAM_EXTRAVASATE = 1
RNG_STREAM_MOVE_DIRECTION = 2
RNG_STREAM_MOVE_DEATH = 3


def _neighbour_sums(field: np.ndarray, width: int, height: int):
    """Sum of in-bounds neighbours and the neighbour count, per cell."""
    grid = field.reshape(height, width)
    total = np.zeros_like(grid)
    count = np.zeros_like(grid)
    # Left, right, up, down -- same order as the GPU kernel accumulates.
    total[:, 1:] += grid[:, :-1]
    count[:, 1:] += 1
    total[:, :-1] += grid[:, 1:]
    count[:, :-1] += 1
    total[1:, :] += grid[:-1, :]
    count[1:, :] += 1
    total[:-1, :] += grid[1:, :]
    count[:-1, :] += 1
    return total.reshape(-1), count.reshape(-1)


def diffuse(field: np.ndarray, width: int, height: int,
            diffusion: float, decay: float) -> np.ndarray:
    """One diffusion + decay update of a scalar field (kernels 5 and 6)."""
    total, count = _neighbour_sums(field, width, height)
    updated = (field + diffusion * (total - count * field)) * (1.0 - decay)
    return np.maximum(updated, 0.0)


def extravasate_tcells(state: SimCovState) -> None:
    """Kernel 2 equivalent: T cells enter where inflammatory signal is present."""
    params = state.params
    cells = np.arange(params.cells)
    draws = counter_uniform(params.seed, state.step * 8 + RNG_STREAM_EXTRAVASATE, cells)
    eligible = (state.tcells == 0) & (state.chemokine > params.chemokine_extravasate_threshold)
    arriving = eligible & (draws < params.extravasate_probability)
    state.tcells[arriving] = 1.0


def move_tcells(state: SimCovState) -> None:
    """Kernel 3 equivalent: random T-cell walk with cell-order conflict resolution."""
    params = state.params
    width, height = params.width, params.height
    next_tcells = np.zeros_like(state.tcells)
    death_draws = counter_uniform(params.seed, state.step * 8 + RNG_STREAM_MOVE_DEATH,
                                  np.arange(params.cells))
    direction_draws = counter_uniform(params.seed, state.step * 8 + RNG_STREAM_MOVE_DIRECTION,
                                      np.arange(params.cells))
    for cell in range(params.cells):
        if state.tcells[cell] == 0:
            continue
        if death_draws[cell] < TCELL_DEATH_PROBABILITY:
            continue
        direction = int(direction_draws[cell] * 5.0)
        x, y = cell % width, cell // width
        target = cell
        if direction == 1 and x > 0:
            target = cell - 1
        elif direction == 2 and x < width - 1:
            target = cell + 1
        elif direction == 3 and y > 0:
            target = cell - width
        elif direction == 4 and y < height - 1:
            target = cell + width
        if next_tcells[target] == 0:
            next_tcells[target] = 1.0
        elif next_tcells[cell] == 0:
            next_tcells[cell] = 1.0
        # Otherwise both the target and the origin are occupied: the T cell
        # is lost, exactly like the losing thread of the GPU race.
    state.tcells_next = next_tcells
    state.swap_tcell_buffers()


def update_epithelial(state: SimCovState) -> None:
    """Kernel 4 equivalent: the epithelial cell state machine."""
    params = state.params
    epithelial = state.epithelial
    timer = state.timer

    healthy = epithelial == HEALTHY
    infected_now = healthy & (state.virions > params.infectivity_threshold)
    epithelial[infected_now] = INCUBATING
    timer[infected_now] = 0.0

    incubating = epithelial == INCUBATING
    incubating &= ~infected_now
    timer[incubating] += 1.0
    express_now = incubating & (timer >= params.incubation_period)
    epithelial[express_now] = EXPRESSING
    timer[express_now] = 0.0

    expressing = (epithelial == EXPRESSING) & ~express_now
    killed = expressing & (state.tcells > 0)
    epithelial[killed] = APOPTOTIC
    timer[killed] = 0.0

    apoptotic = (epithelial == APOPTOTIC) & ~killed
    timer[apoptotic] += 1.0
    dead_now = apoptotic & (timer >= params.apoptosis_period)
    epithelial[dead_now] = DEAD


def produce_virions(state: SimCovState) -> None:
    """Kernel 5 equivalent: expressing cells shed virions and inflammatory signal."""
    params = state.params
    expressing = state.epithelial == EXPRESSING
    apoptotic = state.epithelial == APOPTOTIC
    state.virions[expressing] += params.virion_production
    state.chemokine[expressing] += params.chemokine_production
    state.chemokine[apoptotic] += params.chemokine_production * 0.5


def spread_fields(state: SimCovState) -> None:
    """Kernels 6 and 7 equivalent: virion and inflammatory-signal diffusion.

    Diffusion uses ``diffusion_substeps`` finer sub-steps per simulation
    step, matching the GPU driver's repeated spread-kernel launches.
    """
    params = state.params
    for _ in range(params.diffusion_substeps):
        state.virions_next = diffuse(state.virions, params.width, params.height,
                                     params.virion_diffusion, params.virion_decay)
        state.chemokine_next = diffuse(state.chemokine, params.width, params.height,
                                       params.chemokine_diffusion, params.chemokine_decay)
        state.swap_diffusion_buffers()


def step(state: SimCovState) -> Dict[str, float]:
    """Advance the reference simulation by one step and return its summary."""
    extravasate_tcells(state)
    move_tcells(state)
    update_epithelial(state)
    produce_virions(state)
    spread_fields(state)
    state.step += 1
    return state.summary()


def run_reference(params: SimCovParams) -> SimCovState:
    """Run the full reference simulation and return the final state."""
    state = SimCovState.initial(params)
    for _ in range(params.steps):
        step(state)
    return state


def reference_trajectory(params: SimCovParams) -> List[Dict[str, float]]:
    """Per-step summaries of a reference run (used by examples and tests)."""
    state = SimCovState.initial(params)
    return [step(state) for _ in range(params.steps)]
