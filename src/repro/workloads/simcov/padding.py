"""Grid padding: the safe alternative to boundary-check removal (Fig. 10(c)).

GEVO's boundary-check removal is fast but unsafe (it reads outside the
grid).  The paper reports that the SIMCoV developers, informed by the
discovery, adopted a manual fix instead: pad the grid borders with zero
cells so that edge threads can read their "missing" neighbours from the
padding, making the per-neighbour boundary checks unnecessary, at a
negligible memory cost.  This module implements that variant of the
diffusion kernel plus the helpers to move a field in and out of its padded
layout, and is used by the Section VI-D experiment / benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...gpu import GpuDevice
from ...ir import KernelBuilder, Module, Param, build_module
from .kernels import BLOCK_THREADS
from .params import SimCovParams


def build_padded_spread_kernel(kernel_name: str = "simcov_spread_padded",
                               field_name: str = "field") -> Module:
    """Diffusion kernel over a zero-padded grid: no boundary checks at all.

    The padded layout stores a ``(height + 2) x (width + 2)`` grid; thread
    ``cell`` handles interior cell ``(x, y)`` (0-based over the interior)
    located at padded index ``(y + 1) * (width + 2) + (x + 1)``.  All four
    neighbour reads are unconditional; the padding supplies zeros at the
    borders.
    """
    b = KernelBuilder(
        kernel_name,
        params=[Param(field_name, "buffer"), Param(f"{field_name}_next", "buffer"),
                Param("n_cells", "scalar"), Param("width", "scalar"),
                Param("padded_width", "scalar"), Param("diffusion", "scalar"),
                Param("decay", "scalar")],
        source_file=f"{kernel_name}.cu",
    )
    b.block("entry")
    b.loc(5)
    tid = b.tid_x(dest="tid")
    bid = b.bid_x(dest="bid")
    bdim = b.bdim_x(dest="bdim")
    cell = b.add(b.mul(bid, bdim), tid, dest="cell")
    in_grid = b.lt(cell, b.reg("n_cells"), dest="in_grid")
    with b.if_then(in_grid):
        b.loc(8)
        x = b.rem(cell, b.reg("width"), dest="x")
        y = b.div(cell, b.reg("width"), dest="y")
        padded = b.add(b.mul(b.add(y, 1), b.reg("padded_width")), b.add(x, 1), dest="padded")
        centre = b.load(b.reg(field_name), padded, dest="centre")
        # The developers' padding fix rewrites only the boundary handling; the
        # CPU port's redundant centre reload stays (GEVO's separate edit is
        # what removes it), which is why padding gains slightly less than the
        # unsafe check removal in the paper.
        b.load(b.reg(field_name), padded, dest="centre_again")
        left = b.load(b.reg(field_name), b.sub(padded, 1), dest="left")
        right = b.load(b.reg(field_name), b.add(padded, 1), dest="right")
        up = b.load(b.reg(field_name), b.sub(padded, b.reg("padded_width")), dest="up")
        down = b.load(b.reg(field_name), b.add(padded, b.reg("padded_width")), dest="down")
        total = b.add(b.add(left, right), b.add(up, down), dest="total")
        laplacian = b.sub(total, b.mul(4, centre), dest="laplacian")
        diffused = b.add(centre, b.mul(b.reg("diffusion"), laplacian), dest="diffused")
        retained = b.sub(1.0, b.reg("decay"), dest="retained")
        updated = b.max(b.mul(diffused, retained), 0.0, dest="updated")
        b.store(b.reg(f"{field_name}_next"), padded, updated)
    b.ret()
    return build_module(kernel_name, b.build())


def pad_field(field: np.ndarray, width: int, height: int) -> np.ndarray:
    """Embed an interior field into a zero-padded ``(height+2, width+2)`` layout."""
    padded = np.zeros((height + 2, width + 2), dtype=np.float64)
    padded[1:-1, 1:-1] = np.asarray(field, dtype=np.float64).reshape(height, width)
    return padded.reshape(-1)


def unpad_field(padded: np.ndarray, width: int, height: int) -> np.ndarray:
    """Extract the interior of a padded field back into the flat layout."""
    grid = np.asarray(padded, dtype=np.float64).reshape(height + 2, width + 2)
    return grid[1:-1, 1:-1].reshape(-1).copy()


@dataclass
class PaddedSpreadResult:
    """Outcome of one padded diffusion launch."""

    field_next: np.ndarray
    kernel_time_ms: float
    padded_cells: int


def run_padded_spread(device: GpuDevice, params: SimCovParams, field: np.ndarray,
                      diffusion: float, decay: float,
                      module: Optional[Module] = None) -> PaddedSpreadResult:
    """Run one diffusion step of *field* using the padded kernel."""
    module = module or build_padded_spread_kernel()
    padded_width = params.width + 2
    padded_in = pad_field(field, params.width, params.height)
    padded_out = np.zeros_like(padded_in)
    grid = max(1, math.ceil(params.cells / BLOCK_THREADS))
    result = device.launch(module, grid=grid, block=BLOCK_THREADS, args={
        "field": padded_in, "field_next": padded_out,
        "n_cells": params.cells, "width": params.width,
        "padded_width": padded_width, "diffusion": diffusion, "decay": decay,
    }, kernel_name=module.function_order()[0])
    return PaddedSpreadResult(
        field_next=unpad_field(padded_out, params.width, params.height),
        kernel_time_ms=result.time_ms,
        padded_cells=(params.width + 2) * (params.height + 2),
    )
