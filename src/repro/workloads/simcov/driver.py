"""Host-side driver and GEVO adapter for the SIMCoV workload.

The driver owns the simulation state arrays, launches the eight kernels in
order for every time step (with the buffer swaps the double-buffered
kernels require), and accumulates the total simulated kernel time, which is
GEVO's fitness.  The device is configured with the unified global-memory
arena so that slightly out-of-bounds accesses behave like they do on real
CUDA hardware (read a neighbouring allocation) -- the behaviour the
boundary-check study of Section VI-D depends on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ...errors import KernelTrap, LaunchError
from ...gevo.fitness import CaseResult, FitnessResult, WorkloadAdapter
from ...gpu import GpuArch, GpuDevice, P100
from ...ir import Module
from .kernels import BLOCK_THREADS, SimCovKernels, build_simcov_kernels
from .params import SimCovParams
from .reference import run_reference
from .state import SimCovState
from .validation import states_close

#: Guard region (in elements) of the simulated device allocator.  Chosen so
#: that the fitness grid's out-of-bounds rows stay inside mapped memory
#: while the wider validation grid's do not (Section VI-D).
ARENA_GUARD_ELEMENTS = 24


@dataclass
class SimCovRunResult:
    """Result of one GPU SIMCoV run."""

    state: SimCovState
    kernel_time_ms: float
    launches: int
    stats: np.ndarray
    summaries: List[Dict[str, float]] = field(default_factory=list)


class SimCovDriver:
    """Launches the SIMCoV kernels over a simulation."""

    def __init__(self, kernels: Optional[SimCovKernels] = None,
                 device: Optional[GpuDevice] = None, arch: GpuArch = P100):
        self.kernels = kernels or build_simcov_kernels()
        self.device = device or GpuDevice(
            arch, unified_memory_arena=True, arena_guard_elements=ARENA_GUARD_ELEMENTS)

    # -- execution -------------------------------------------------------------------
    def run(self, params: SimCovParams, module: Optional[Module] = None,
            record_summaries: bool = False) -> SimCovRunResult:
        """Run the simulation described by *params* using *module*."""
        module = module if module is not None else self.kernels.module
        state = SimCovState.initial(params)
        grid = max(1, math.ceil(params.cells / self.kernels.block_threads))
        block = self.kernels.block_threads
        total_time = 0.0
        launches = 0
        stats = np.zeros(4, dtype=np.float64)
        summaries: List[Dict[str, float]] = []

        def launch(kernel_name: str, args: Dict[str, object]) -> None:
            nonlocal total_time, launches
            result = self.device.launch(module, grid=grid, block=block, args=args,
                                        kernel_name=kernel_name)
            total_time += result.time_ms
            launches += 1

        sites = params.infection_cells()
        launch("simcov_init", {
            "epithelial": state.epithelial, "timer": state.timer,
            "virions": state.virions, "chemokine": state.chemokine,
            "tcells": state.tcells, "n_cells": params.cells,
            "site_a": sites[0], "site_b": sites[-1],
            "initial_virions": params.initial_virions,
        })

        for step_index in range(params.steps):
            launch("simcov_extravasate", {
                "tcells": state.tcells, "chemokine": state.chemokine,
                "n_cells": params.cells, "seed": params.seed, "step": step_index,
                "threshold": params.chemokine_extravasate_threshold,
                "probability": params.extravasate_probability,
            })
            state.tcells_next[:] = 0.0
            launch("simcov_move_tcells", {
                "tcells": state.tcells, "tcells_next": state.tcells_next,
                "n_cells": params.cells, "width": params.width, "height": params.height,
                "seed": params.seed, "step": step_index,
            })
            state.swap_tcell_buffers()
            launch("simcov_update_epithelial", {
                "epithelial": state.epithelial, "timer": state.timer,
                "virions": state.virions, "tcells": state.tcells,
                "n_cells": params.cells,
                "infect_threshold": params.infectivity_threshold,
                "incubation_period": params.incubation_period,
                "apoptosis_period": params.apoptosis_period,
            })
            launch("simcov_produce", {
                "epithelial": state.epithelial, "virions": state.virions,
                "chemokine": state.chemokine, "n_cells": params.cells,
                "virion_production": params.virion_production,
                "chemokine_production": params.chemokine_production,
            })
            for _ in range(params.diffusion_substeps):
                launch("simcov_spread_virions", {
                    "virions": state.virions, "virions_next": state.virions_next,
                    "n_cells": params.cells, "width": params.width, "height": params.height,
                    "diffusion": params.virion_diffusion, "decay": params.virion_decay,
                })
                launch("simcov_spread_chemokine", {
                    "chemokine": state.chemokine, "chemokine_next": state.chemokine_next,
                    "n_cells": params.cells, "width": params.width, "height": params.height,
                    "diffusion": params.chemokine_diffusion, "decay": params.chemokine_decay,
                })
                state.swap_diffusion_buffers()
            # The application samples its observables once per reporting
            # interval, not every step; launch the reduction on the last step.
            if step_index == params.steps - 1:
                stats[:] = 0.0
                launch("simcov_statistics", {
                    "virions": state.virions, "chemokine": state.chemokine,
                    "tcells": state.tcells, "epithelial": state.epithelial,
                    "stats": stats, "n_cells": params.cells,
                })
            state.step += 1
            if record_summaries:
                summaries.append(state.summary())

        return SimCovRunResult(state=state, kernel_time_ms=total_time,
                               launches=launches, stats=stats, summaries=summaries)

    def run_batched(self, rows) -> List[object]:
        """Run N independent simulations in lockstep batched launches.

        ``rows`` is a sequence of ``(params, module)`` pairs (``module``
        may be ``None`` for the unmutated kernels).  When every row
        shares the launch geometry (grid size, step and substep counts),
        the per-step kernel sequences align and each of the launch
        points becomes one :meth:`GpuDevice.launch_batched` call over
        the still-running rows; rows whose launch traps drop out of the
        batch with their exception recorded and do not perturb siblings.
        Returns one entry per row, in order: a :class:`SimCovRunResult`
        or the :class:`KernelTrap` / :class:`LaunchError` the solo run
        would have raised.
        """
        rows = list(rows)
        outcomes: List[object] = [None] * len(rows)
        first = rows[0][0] if rows else None
        aligned = len(rows) >= 2 and all(
            p.cells == first.cells and p.width == first.width
            and p.height == first.height and p.steps == first.steps
            and p.diffusion_substeps == first.diffusion_substeps
            for p, _ in rows)
        if not aligned:
            for index, (params, module) in enumerate(rows):
                outcomes[index] = self._run_or_error(params, module)
            return outcomes

        modules = [module if module is not None else self.kernels.module
                   for _, module in rows]
        all_params = [params for params, _ in rows]
        states = [SimCovState.initial(params) for params in all_params]
        grid = max(1, math.ceil(first.cells / self.kernels.block_threads))
        block = self.kernels.block_threads
        total_time = [0.0] * len(rows)
        launches = [0] * len(rows)
        stats = [np.zeros(4, dtype=np.float64) for _ in rows]
        active = list(range(len(rows)))

        def launch(kernel_name: str, args_of) -> None:
            nonlocal active
            if not active:
                return
            results = self.device.launch_batched(
                [(modules[index], args_of(index)) for index in active],
                grid=grid, block=block, kernel_name=kernel_name)
            survivors = []
            for index, result in zip(active, results):
                if isinstance(result, Exception):
                    outcomes[index] = result
                else:
                    total_time[index] += result.time_ms
                    launches[index] += 1
                    survivors.append(index)
            active = survivors

        sites = [params.infection_cells() for params in all_params]
        launch("simcov_init", lambda i: {
            "epithelial": states[i].epithelial, "timer": states[i].timer,
            "virions": states[i].virions, "chemokine": states[i].chemokine,
            "tcells": states[i].tcells, "n_cells": all_params[i].cells,
            "site_a": sites[i][0], "site_b": sites[i][-1],
            "initial_virions": all_params[i].initial_virions,
        })

        for step_index in range(first.steps):
            launch("simcov_extravasate", lambda i: {
                "tcells": states[i].tcells, "chemokine": states[i].chemokine,
                "n_cells": all_params[i].cells, "seed": all_params[i].seed,
                "step": step_index,
                "threshold": all_params[i].chemokine_extravasate_threshold,
                "probability": all_params[i].extravasate_probability,
            })
            for index in active:
                states[index].tcells_next[:] = 0.0
            launch("simcov_move_tcells", lambda i: {
                "tcells": states[i].tcells, "tcells_next": states[i].tcells_next,
                "n_cells": all_params[i].cells, "width": all_params[i].width,
                "height": all_params[i].height,
                "seed": all_params[i].seed, "step": step_index,
            })
            for index in active:
                states[index].swap_tcell_buffers()
            launch("simcov_update_epithelial", lambda i: {
                "epithelial": states[i].epithelial, "timer": states[i].timer,
                "virions": states[i].virions, "tcells": states[i].tcells,
                "n_cells": all_params[i].cells,
                "infect_threshold": all_params[i].infectivity_threshold,
                "incubation_period": all_params[i].incubation_period,
                "apoptosis_period": all_params[i].apoptosis_period,
            })
            launch("simcov_produce", lambda i: {
                "epithelial": states[i].epithelial, "virions": states[i].virions,
                "chemokine": states[i].chemokine, "n_cells": all_params[i].cells,
                "virion_production": all_params[i].virion_production,
                "chemokine_production": all_params[i].chemokine_production,
            })
            for _ in range(first.diffusion_substeps):
                launch("simcov_spread_virions", lambda i: {
                    "virions": states[i].virions,
                    "virions_next": states[i].virions_next,
                    "n_cells": all_params[i].cells, "width": all_params[i].width,
                    "height": all_params[i].height,
                    "diffusion": all_params[i].virion_diffusion,
                    "decay": all_params[i].virion_decay,
                })
                launch("simcov_spread_chemokine", lambda i: {
                    "chemokine": states[i].chemokine,
                    "chemokine_next": states[i].chemokine_next,
                    "n_cells": all_params[i].cells, "width": all_params[i].width,
                    "height": all_params[i].height,
                    "diffusion": all_params[i].chemokine_diffusion,
                    "decay": all_params[i].chemokine_decay,
                })
                for index in active:
                    states[index].swap_diffusion_buffers()
            if step_index == first.steps - 1:
                for index in active:
                    stats[index][:] = 0.0
                launch("simcov_statistics", lambda i: {
                    "virions": states[i].virions, "chemokine": states[i].chemokine,
                    "tcells": states[i].tcells, "epithelial": states[i].epithelial,
                    "stats": stats[i], "n_cells": all_params[i].cells,
                })
            for index in active:
                states[index].step += 1

        for index in active:
            outcomes[index] = SimCovRunResult(
                state=states[index], kernel_time_ms=total_time[index],
                launches=launches[index], stats=stats[index], summaries=[])
        return outcomes

    def _run_or_error(self, params: SimCovParams, module: Optional[Module]):
        try:
            return self.run(params, module=module)
        except (KernelTrap, LaunchError) as exc:
            return exc


class SimCovWorkloadAdapter(WorkloadAdapter):
    """GEVO adapter: fitness = total kernel time, validity = tolerance check.

    The fitness run uses the small grid (the stand-in for the paper's
    100x100 fitness grid); :meth:`validate` re-runs the variant on the
    larger held-out grid, where unsafe out-of-bounds optimizations fault.
    """

    def __init__(self, arch: GpuArch = P100,
                 fitness_params: Optional[SimCovParams] = None,
                 validation_params: Optional[SimCovParams] = None,
                 relative_tolerance: float = 0.15):
        self.arch = arch
        self.driver = SimCovDriver(arch=arch)
        self.fitness_params = fitness_params or SimCovParams.fitness()
        self.validation_params = validation_params or SimCovParams.validation()
        self.relative_tolerance = relative_tolerance
        self.name = f"SIMCoV on {arch.name}"
        self._reference_fitness = run_reference(self.fitness_params)
        self._reference_validation = run_reference(self.validation_params)

    # -- WorkloadAdapter interface ----------------------------------------------------
    def original_module(self) -> Module:
        return self.driver.kernels.module

    @property
    def kernels(self) -> SimCovKernels:
        return self.driver.kernels

    def evaluate(self, module: Module) -> FitnessResult:
        case = self._run_case(module, self.fitness_params, self._reference_fitness,
                              name="fitness-grid")
        return FitnessResult.from_cases([case])

    def evaluate_batched(self, modules) -> List[FitnessResult]:
        """Fitness of N co-batchable variants in one stacked pass.

        Bit-for-bit equivalent to mapping :meth:`evaluate` over
        *modules* (the batched launch path falls back to solo runs for
        anything it cannot reproduce exactly, including trapped rows).
        """
        outcomes = self.driver.run_batched(
            [(self.fitness_params, module) for module in modules])
        return [FitnessResult.from_cases([self._case_from_outcome(
                    outcome, self._reference_fitness, "fitness-grid")])
                for outcome in outcomes]

    def validate(self, module: Module) -> FitnessResult:
        case = self._run_case(module, self.validation_params, self._reference_validation,
                              name="held-out-grid")
        return FitnessResult.from_cases([case])

    # -- helpers -----------------------------------------------------------------------
    def _run_case(self, module: Module, params: SimCovParams,
                  reference: SimCovState, name: str) -> CaseResult:
        try:
            result = self.driver.run(params, module=module)
        except (KernelTrap, LaunchError) as exc:
            result = exc
        return self._case_from_outcome(result, reference, name)

    def _case_from_outcome(self, outcome, reference: SimCovState,
                           name: str) -> CaseResult:
        if isinstance(outcome, Exception):
            return CaseResult(name=name, passed=False, runtime_ms=math.inf,
                              message=str(outcome))
        ok, report = states_close(outcome.state, reference, self.relative_tolerance)
        if ok:
            return CaseResult(name=name, passed=True, runtime_ms=outcome.kernel_time_ms)
        worst = max(report, key=report.get)
        return CaseResult(
            name=name, passed=False, runtime_ms=outcome.kernel_time_ms,
            message=(f"output deviates from the fixed-seed ground truth: field {worst!r} "
                     f"relative error {report[worst]:.3f} exceeds {self.relative_tolerance}"))
