"""Host-side driver and GEVO adapter for the SIMCoV workload.

The driver owns the simulation state arrays, launches the eight kernels in
order for every time step (with the buffer swaps the double-buffered
kernels require), and accumulates the total simulated kernel time, which is
GEVO's fitness.  The device is configured with the unified global-memory
arena so that slightly out-of-bounds accesses behave like they do on real
CUDA hardware (read a neighbouring allocation) -- the behaviour the
boundary-check study of Section VI-D depends on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ...errors import KernelTrap, LaunchError
from ...gevo.fitness import CaseResult, FitnessResult, WorkloadAdapter
from ...gpu import GpuArch, GpuDevice, P100
from ...ir import Module
from .kernels import BLOCK_THREADS, SimCovKernels, build_simcov_kernels
from .params import SimCovParams
from .reference import run_reference
from .state import SimCovState
from .validation import states_close

#: Guard region (in elements) of the simulated device allocator.  Chosen so
#: that the fitness grid's out-of-bounds rows stay inside mapped memory
#: while the wider validation grid's do not (Section VI-D).
ARENA_GUARD_ELEMENTS = 24


@dataclass
class SimCovRunResult:
    """Result of one GPU SIMCoV run."""

    state: SimCovState
    kernel_time_ms: float
    launches: int
    stats: np.ndarray
    summaries: List[Dict[str, float]] = field(default_factory=list)


class SimCovDriver:
    """Launches the SIMCoV kernels over a simulation."""

    def __init__(self, kernels: Optional[SimCovKernels] = None,
                 device: Optional[GpuDevice] = None, arch: GpuArch = P100):
        self.kernels = kernels or build_simcov_kernels()
        self.device = device or GpuDevice(
            arch, unified_memory_arena=True, arena_guard_elements=ARENA_GUARD_ELEMENTS)

    # -- execution -------------------------------------------------------------------
    def run(self, params: SimCovParams, module: Optional[Module] = None,
            record_summaries: bool = False) -> SimCovRunResult:
        """Run the simulation described by *params* using *module*."""
        module = module if module is not None else self.kernels.module
        state = SimCovState.initial(params)
        grid = max(1, math.ceil(params.cells / self.kernels.block_threads))
        block = self.kernels.block_threads
        total_time = 0.0
        launches = 0
        stats = np.zeros(4, dtype=np.float64)
        summaries: List[Dict[str, float]] = []

        def launch(kernel_name: str, args: Dict[str, object]) -> None:
            nonlocal total_time, launches
            result = self.device.launch(module, grid=grid, block=block, args=args,
                                        kernel_name=kernel_name)
            total_time += result.time_ms
            launches += 1

        sites = params.infection_cells()
        launch("simcov_init", {
            "epithelial": state.epithelial, "timer": state.timer,
            "virions": state.virions, "chemokine": state.chemokine,
            "tcells": state.tcells, "n_cells": params.cells,
            "site_a": sites[0], "site_b": sites[-1],
            "initial_virions": params.initial_virions,
        })

        for step_index in range(params.steps):
            launch("simcov_extravasate", {
                "tcells": state.tcells, "chemokine": state.chemokine,
                "n_cells": params.cells, "seed": params.seed, "step": step_index,
                "threshold": params.chemokine_extravasate_threshold,
                "probability": params.extravasate_probability,
            })
            state.tcells_next[:] = 0.0
            launch("simcov_move_tcells", {
                "tcells": state.tcells, "tcells_next": state.tcells_next,
                "n_cells": params.cells, "width": params.width, "height": params.height,
                "seed": params.seed, "step": step_index,
            })
            state.swap_tcell_buffers()
            launch("simcov_update_epithelial", {
                "epithelial": state.epithelial, "timer": state.timer,
                "virions": state.virions, "tcells": state.tcells,
                "n_cells": params.cells,
                "infect_threshold": params.infectivity_threshold,
                "incubation_period": params.incubation_period,
                "apoptosis_period": params.apoptosis_period,
            })
            launch("simcov_produce", {
                "epithelial": state.epithelial, "virions": state.virions,
                "chemokine": state.chemokine, "n_cells": params.cells,
                "virion_production": params.virion_production,
                "chemokine_production": params.chemokine_production,
            })
            for _ in range(params.diffusion_substeps):
                launch("simcov_spread_virions", {
                    "virions": state.virions, "virions_next": state.virions_next,
                    "n_cells": params.cells, "width": params.width, "height": params.height,
                    "diffusion": params.virion_diffusion, "decay": params.virion_decay,
                })
                launch("simcov_spread_chemokine", {
                    "chemokine": state.chemokine, "chemokine_next": state.chemokine_next,
                    "n_cells": params.cells, "width": params.width, "height": params.height,
                    "diffusion": params.chemokine_diffusion, "decay": params.chemokine_decay,
                })
                state.swap_diffusion_buffers()
            # The application samples its observables once per reporting
            # interval, not every step; launch the reduction on the last step.
            if step_index == params.steps - 1:
                stats[:] = 0.0
                launch("simcov_statistics", {
                    "virions": state.virions, "chemokine": state.chemokine,
                    "tcells": state.tcells, "epithelial": state.epithelial,
                    "stats": stats, "n_cells": params.cells,
                })
            state.step += 1
            if record_summaries:
                summaries.append(state.summary())

        return SimCovRunResult(state=state, kernel_time_ms=total_time,
                               launches=launches, stats=stats, summaries=summaries)


class SimCovWorkloadAdapter(WorkloadAdapter):
    """GEVO adapter: fitness = total kernel time, validity = tolerance check.

    The fitness run uses the small grid (the stand-in for the paper's
    100x100 fitness grid); :meth:`validate` re-runs the variant on the
    larger held-out grid, where unsafe out-of-bounds optimizations fault.
    """

    def __init__(self, arch: GpuArch = P100,
                 fitness_params: Optional[SimCovParams] = None,
                 validation_params: Optional[SimCovParams] = None,
                 relative_tolerance: float = 0.15):
        self.arch = arch
        self.driver = SimCovDriver(arch=arch)
        self.fitness_params = fitness_params or SimCovParams.fitness()
        self.validation_params = validation_params or SimCovParams.validation()
        self.relative_tolerance = relative_tolerance
        self.name = f"SIMCoV on {arch.name}"
        self._reference_fitness = run_reference(self.fitness_params)
        self._reference_validation = run_reference(self.validation_params)

    # -- WorkloadAdapter interface ----------------------------------------------------
    def original_module(self) -> Module:
        return self.driver.kernels.module

    @property
    def kernels(self) -> SimCovKernels:
        return self.driver.kernels

    def evaluate(self, module: Module) -> FitnessResult:
        case = self._run_case(module, self.fitness_params, self._reference_fitness,
                              name="fitness-grid")
        return FitnessResult.from_cases([case])

    def validate(self, module: Module) -> FitnessResult:
        case = self._run_case(module, self.validation_params, self._reference_validation,
                              name="held-out-grid")
        return FitnessResult.from_cases([case])

    # -- helpers -----------------------------------------------------------------------
    def _run_case(self, module: Module, params: SimCovParams,
                  reference: SimCovState, name: str) -> CaseResult:
        try:
            result = self.driver.run(params, module=module)
        except (KernelTrap, LaunchError) as exc:
            return CaseResult(name=name, passed=False, runtime_ms=math.inf, message=str(exc))
        ok, report = states_close(result.state, reference, self.relative_tolerance)
        if ok:
            return CaseResult(name=name, passed=True, runtime_ms=result.kernel_time_ms)
        worst = max(report, key=report.get)
        return CaseResult(
            name=name, passed=False, runtime_ms=result.kernel_time_ms,
            message=(f"output deviates from the fixed-seed ground truth: field {worst!r} "
                     f"relative error {report[worst]:.3f} exceeds {self.relative_tolerance}"))
