"""Parameters of the SIMCoV model.

The parameter names follow the description in Section II-C of the paper
(and Moses et al. 2021): epithelial cells transition healthy -> incubating
-> expressing -> apoptotic -> dead, virions and inflammatory signal
(chemokine) diffuse over the grid, and T cells extravasate from the
vasculature with a probability driven by the inflammatory signal and then
perform a random walk.

The default grid sizes are scaled down from the paper's 100x100 fitness
grid and 2500x2500 validation grid so the pure-Python GPU simulator can
run them; EXPERIMENTS.md records the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Tuple

#: Epithelial cell states (Section II-C).
HEALTHY = 0
INCUBATING = 1
EXPRESSING = 2
APOPTOTIC = 3
DEAD = 4

STATE_NAMES = {
    HEALTHY: "healthy",
    INCUBATING: "incubating",
    EXPRESSING: "expressing",
    APOPTOTIC: "apoptotic",
    DEAD: "dead",
}


@dataclass(frozen=True)
class SimCovParams:
    """Configuration of one SIMCoV simulation."""

    width: int = 16
    height: int = 16
    steps: int = 6
    seed: int = 2021

    # -- virion / chemokine dynamics ------------------------------------------
    virion_diffusion: float = 0.15
    virion_decay: float = 0.05
    chemokine_diffusion: float = 0.2
    chemokine_decay: float = 0.1
    #: Diffusion sub-steps per simulation step (diffusion needs a finer time
    #: step than the agent updates for numerical stability; this is why the
    #: spread kernels dominate SIMCoV's runtime -- Section II-C).
    diffusion_substeps: int = 3
    virion_production: float = 1.1
    chemokine_production: float = 0.6
    infectivity_threshold: float = 0.5

    # -- epithelial state machine ----------------------------------------------
    incubation_period: int = 2
    apoptosis_period: int = 2

    # -- T cells -----------------------------------------------------------------
    extravasate_probability: float = 0.35
    chemokine_extravasate_threshold: float = 0.05
    tcell_lifespan: int = 12

    # -- initial infection sites (grid coordinates) -------------------------------
    initial_infections: Tuple[Tuple[int, int], ...] = ()
    initial_virions: float = 8.0

    def __post_init__(self):
        if self.width < 4 or self.height < 4:
            raise ValueError("SIMCoV grids must be at least 4x4")
        if self.steps < 1:
            raise ValueError("steps must be positive")
        if not self.initial_infections:
            centre = (self.width // 2, self.height // 2)
            quarter = (self.width // 4, self.height // 4)
            object.__setattr__(self, "initial_infections", (centre, quarter))
        for x, y in self.initial_infections:
            if not (0 <= x < self.width and 0 <= y < self.height):
                raise ValueError(f"infection site {(x, y)} outside the {self.width}x{self.height} grid")

    # -- helpers -------------------------------------------------------------------
    @property
    def cells(self) -> int:
        return self.width * self.height

    def infection_cells(self) -> List[int]:
        """Linear cell indices of the initial infection sites."""
        return [y * self.width + x for x, y in self.initial_infections]

    def with_(self, **changes) -> "SimCovParams":
        return replace(self, **changes)

    @classmethod
    def fitness(cls, seed: int = 2021) -> "SimCovParams":
        """The scaled stand-in for the paper's 100x100-grid, 2500-step fitness runs."""
        return cls(width=16, height=16, steps=6, seed=seed)

    @classmethod
    def validation(cls, seed: int = 2021) -> "SimCovParams":
        """The scaled stand-in for the larger held-out validation run.

        The width exceeds the device allocator's guard region, which is what
        exposes the out-of-bounds accesses of the boundary-check-removal
        variant (Section VI-D).
        """
        return cls(width=40, height=24, steps=6, seed=seed)

    @classmethod
    def quick(cls, seed: int = 2021) -> "SimCovParams":
        """A minimal configuration for unit tests."""
        return cls(width=8, height=8, steps=3, seed=seed)
