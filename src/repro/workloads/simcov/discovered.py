"""Recorded GEVO-discovered edit sets for SIMCoV (Section VI-D and VI-E).

Three variants are encoded:

* :func:`boundary_check_removal_edits` -- the unsafe optimization GEVO
  finds: delete the per-neighbour boundary comparisons/conjunctions in the
  two diffusion kernels and force the neighbour branches to always execute.
  Fast (the paper reports ~20%), passes the small fitness grid thanks to
  the device allocator's guard slack, and faults on the larger held-out
  grid.
* :func:`redundant_load_removal_edits` -- the independent edit deleting
  the leftover centre reload in each diffusion kernel (the paper's
  Section V-B notes SIMCoV's impactful edits are independent, not
  epistatic).
* :func:`simcov_discovered_edits` -- the combination used for the Figure 5
  headline numbers.

The safe alternative the SIMCoV developers adopted -- padding the grid with
a border of zero cells so the checks are unnecessary (Figure 10(c)) -- is a
host-side change, not an IR edit; it is implemented by
:class:`~repro.workloads.simcov.padding.PaddedSimCovDriver`.
"""

from __future__ import annotations

from typing import Dict, List

from ...gevo.edits import Edit, InstructionDelete, OperandReplace
from ...ir.values import Reg
from .kernels import DIRECTIONS, SimCovKernels

#: The two kernels whose boundary logic the recorded edits rewrite.
SPREAD_KERNELS = ("simcov_spread_virions", "simcov_spread_chemokine")


def _targets(kernels: SimCovKernels, kernel_name: str) -> Dict[str, int]:
    try:
        return kernels.edit_targets[kernel_name]
    except KeyError:
        raise KeyError(
            f"kernel {kernel_name!r} has no recorded edit targets; was the module built "
            "by build_simcov_kernels()?") from None


def boundary_check_removal_edits(kernels: SimCovKernels,
                                 kernel_names=SPREAD_KERNELS) -> List[Edit]:
    """Delete the boundary comparisons and take every neighbour branch.

    For each of the four neighbour directions of each diffusion kernel the
    set contains one operand replacement (the branch condition becomes the
    always-true ``in_grid`` guard) and seven deletions (four comparisons and
    three conjunctions) -- the "multiple conditional branches" removal the
    paper describes.
    """
    edits: List[Edit] = []
    for kernel_name in kernel_names:
        targets = _targets(kernels, kernel_name)
        for name, _, _ in DIRECTIONS:
            edits.append(OperandReplace(targets[f"{name}_branch"], 0, Reg("in_grid")))
            for suffix in ("check_rem", "check_div", "check_add_x", "check_add_y",
                           "cmp_x_low", "cmp_x_high", "cmp_y_low", "cmp_y_high",
                           "and_x", "and_y", "and_all"):
                edits.append(InstructionDelete(targets[f"{name}_{suffix}"]))
    return edits


def redundant_load_removal_edits(kernels: SimCovKernels,
                                 kernel_names=SPREAD_KERNELS) -> List[Edit]:
    """Delete the unused centre reload in each diffusion kernel."""
    return [InstructionDelete(_targets(kernels, kernel_name)["redundant_centre_load"])
            for kernel_name in kernel_names]


def simcov_discovered_edits(kernels: SimCovKernels) -> List[Edit]:
    """The full recorded SIMCoV optimization (Figure 5 headline variant)."""
    return redundant_load_removal_edits(kernels) + boundary_check_removal_edits(kernels)


def single_direction_edits(kernels: SimCovKernels, kernel_name: str,
                           direction: str) -> List[Edit]:
    """The boundary-removal cluster for one direction of one kernel.

    Used by the analysis experiments to show that the branch rewrite and
    the comparison deletions within one direction are interdependent
    (deleting a comparison whose result still feeds the branch makes the
    variant fail), while clusters for different directions are independent
    of each other.
    """
    targets = _targets(kernels, kernel_name)
    if direction not in {name for name, _, _ in DIRECTIONS}:
        raise KeyError(f"unknown direction {direction!r}")
    edits: List[Edit] = [OperandReplace(targets[f"{direction}_branch"], 0, Reg("in_grid"))]
    for suffix in ("check_rem", "check_div", "check_add_x", "check_add_y",
                   "cmp_x_low", "cmp_x_high", "cmp_y_low", "cmp_y_high",
                   "and_x", "and_y", "and_all"):
        edits.append(InstructionDelete(targets[f"{direction}_{suffix}"]))
    return edits
