"""Tolerance-based validation of SIMCoV outputs.

SIMCoV has no formal test dataset; the paper fixes the random seed, treats
the unmodified program's output as ground truth, and introduces
"per-value mean and per-value variance" measures to decide whether a
variant's output is close enough despite the residual non-determinism
(T-cell movement races resolved by the hardware scheduler) --
Section III-C.  This module implements those measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .state import SimCovState

#: Fields compared between a variant run and the ground-truth run.
COMPARED_FIELDS = ("virions", "chemokine", "tcells", "epithelial")


@dataclass(frozen=True)
class FieldDeviation:
    """Per-value deviation statistics of one field."""

    field: str
    mean_abs_error: float
    max_abs_error: float
    reference_scale: float

    @property
    def relative_error(self) -> float:
        """Mean absolute error normalised by the reference scale."""
        if self.reference_scale <= 0:
            return self.mean_abs_error
        return self.mean_abs_error / self.reference_scale


def field_deviation(name: str, candidate: np.ndarray, reference: np.ndarray) -> FieldDeviation:
    """Per-value deviation of one candidate field against the reference."""
    candidate = np.asarray(candidate, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if candidate.shape != reference.shape:
        raise ValueError(
            f"field {name!r}: candidate shape {candidate.shape} differs from "
            f"reference shape {reference.shape}")
    difference = np.abs(candidate - reference)
    scale = float(np.abs(reference).mean())
    scale = max(scale, 1.0)
    return FieldDeviation(
        field=name,
        mean_abs_error=float(difference.mean()),
        max_abs_error=float(difference.max()) if difference.size else 0.0,
        reference_scale=scale,
    )


def compare_states(candidate: SimCovState, reference: SimCovState) -> List[FieldDeviation]:
    """Per-value deviations for every compared field."""
    deviations = []
    for name in COMPARED_FIELDS:
        deviations.append(field_deviation(name, getattr(candidate, name),
                                          getattr(reference, name)))
    return deviations


def states_close(candidate: SimCovState, reference: SimCovState,
                 relative_tolerance: float = 0.15) -> Tuple[bool, Dict[str, float]]:
    """Decide whether a variant's final state matches ground truth.

    Returns ``(ok, per-field relative errors)``.  The default tolerance is
    deliberately loose -- matching the paper's observation that the
    fitness-time validation accepted the boundary-check removal -- while
    still rejecting grossly wrong outputs (empty virion fields, runaway
    values, missing T cells).
    """
    deviations = compare_states(candidate, reference)
    report = {dev.field: dev.relative_error for dev in deviations}
    ok = all(np.isfinite(dev.relative_error) and dev.relative_error <= relative_tolerance
             for dev in deviations)
    return ok, report


def summaries_close(candidate: Dict[str, float], reference: Dict[str, float],
                    relative_tolerance: float = 0.15) -> bool:
    """Compare two summary dictionaries (total virions, T-cell count, ...)."""
    for key, reference_value in reference.items():
        if key == "step":
            continue
        candidate_value = candidate.get(key, float("nan"))
        scale = max(abs(reference_value), 1.0)
        if not np.isfinite(candidate_value):
            return False
        if abs(candidate_value - reference_value) / scale > relative_tolerance:
            return False
    return True
