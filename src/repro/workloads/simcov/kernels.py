"""The eight SIMCoV GPU kernels, authored in the mini-IR.

The paper's SIMCoV GPU code is "an initial GPU port from its multi-core
CPU implementation ... with 1197 lines of code from 8 GPU kernels"
(Section III-B).  The port maps one grid point to one thread and keeps the
CPU code's defensive 2D boundary arithmetic, which is exactly the code
GEVO's boundary-check edits target (Section VI-D).  The eight kernels:

1. ``simcov_init``               -- initialise the grid and seed the infection sites.
2. ``simcov_extravasate``        -- T cells enter tissue where inflammatory signal is present.
3. ``simcov_move_tcells``        -- random T-cell walk with atomic conflict resolution.
4. ``simcov_update_epithelial``  -- the epithelial state machine.
5. ``simcov_produce``            -- virion / inflammatory-signal production.
6. ``simcov_spread_virions``     -- virion diffusion (boundary-check hot spot).
7. ``simcov_spread_chemokine``   -- inflammatory-signal diffusion (same hot spot).
8. ``simcov_statistics``         -- atomic reduction of the summary observables.

``build_simcov_kernels`` returns the module plus the uids of the
instructions the recorded edits target (per-direction boundary comparisons
and conjunctions, the per-direction branch, and a redundant centre reload
left over from the CPU port).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...ir import KernelBuilder, Module, Param, build_module
from .params import APOPTOTIC, DEAD, EXPRESSING, HEALTHY, INCUBATING
from .reference import (
    RNG_STREAM_EXTRAVASATE,
    RNG_STREAM_MOVE_DEATH,
    RNG_STREAM_MOVE_DIRECTION,
    TCELL_DEATH_PROBABILITY,
)

#: Threads per block used by every SIMCoV kernel launch.
BLOCK_THREADS = 64

#: Neighbour directions in accumulation order: (name, dx, dy).
DIRECTIONS = (("left", -1, 0), ("right", 1, 0), ("up", 0, -1), ("down", 0, 1))


@dataclass
class SimCovKernels:
    """The built SIMCoV module plus edit-target metadata."""

    module: Module
    block_threads: int = BLOCK_THREADS
    #: kernel name -> target name -> instruction uid.
    edit_targets: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def kernel_names(self) -> List[str]:
        return list(self.module.function_order())


def _global_cell_index(b: KernelBuilder):
    """Compute the global cell index handled by this thread."""
    tid = b.tid_x(dest="tid")
    bid = b.bid_x(dest="bid")
    bdim = b.bdim_x(dest="bdim")
    return b.add(b.mul(bid, bdim), tid, dest="cell")


# --------------------------------------------------------------------------- kernel 1
def _build_init() -> KernelBuilder:
    b = KernelBuilder(
        "simcov_init",
        params=[Param("epithelial", "buffer"), Param("timer", "buffer"),
                Param("virions", "buffer"), Param("chemokine", "buffer"),
                Param("tcells", "buffer"), Param("n_cells", "scalar"),
                Param("site_a", "scalar"), Param("site_b", "scalar"),
                Param("initial_virions", "scalar")],
        source_file="simcov_init.cu",
    )
    b.block("entry")
    b.loc(5)
    cell = _global_cell_index(b)
    in_grid = b.lt(cell, b.reg("n_cells"), dest="in_grid")
    with b.if_then(in_grid):
        b.loc(7)
        b.store(b.reg("epithelial"), cell, HEALTHY)
        b.store(b.reg("timer"), cell, 0)
        b.store(b.reg("chemokine"), cell, 0.0)
        b.store(b.reg("tcells"), cell, 0)
        is_site = b.or_(b.eq(cell, b.reg("site_a")), b.eq(cell, b.reg("site_b")),
                        dest="is_site")
        seeded = b.select(is_site, b.reg("initial_virions"), 0.0, dest="seeded")
        b.store(b.reg("virions"), cell, seeded)
    b.ret()
    return b.build()


# --------------------------------------------------------------------------- kernel 2
def _build_extravasate() -> KernelBuilder:
    b = KernelBuilder(
        "simcov_extravasate",
        params=[Param("tcells", "buffer"), Param("chemokine", "buffer"),
                Param("n_cells", "scalar"), Param("seed", "scalar"),
                Param("step", "scalar"), Param("threshold", "scalar"),
                Param("probability", "scalar")],
        source_file="simcov_extravasate.cu",
    )
    b.block("entry")
    b.loc(6)
    cell = _global_cell_index(b)
    in_grid = b.lt(cell, b.reg("n_cells"), dest="in_grid")
    with b.if_then(in_grid):
        b.loc(8)
        occupied = b.load(b.reg("tcells"), cell, dest="occupied")
        signal = b.load(b.reg("chemokine"), cell, dest="signal")
        eligible = b.and_(b.eq(occupied, 0), b.gt(signal, b.reg("threshold")),
                          dest="eligible")
        with b.if_then(eligible):
            b.loc(11)
            stream = b.add(b.mul(b.reg("step"), 8), RNG_STREAM_EXTRAVASATE, dest="stream")
            draw = b.rand_uniform(b.reg("seed"), stream, cell, dest="draw")
            arriving = b.lt(draw, b.reg("probability"), dest="arriving")
            with b.if_then(arriving):
                b.store(b.reg("tcells"), cell, 1)
    b.ret()
    return b.build()


# --------------------------------------------------------------------------- kernel 3
def _build_move_tcells() -> KernelBuilder:
    b = KernelBuilder(
        "simcov_move_tcells",
        params=[Param("tcells", "buffer"), Param("tcells_next", "buffer"),
                Param("n_cells", "scalar"), Param("width", "scalar"),
                Param("height", "scalar"), Param("seed", "scalar"),
                Param("step", "scalar")],
        source_file="simcov_move_tcells.cu",
    )
    b.block("entry")
    b.loc(6)
    cell = _global_cell_index(b)
    in_grid = b.lt(cell, b.reg("n_cells"), dest="in_grid")
    with b.if_then(in_grid):
        b.loc(8)
        occupied = b.load(b.reg("tcells"), cell, dest="occupied")
        with b.if_then(b.gt(occupied, 0)):
            b.loc(10)
            death_stream = b.add(b.mul(b.reg("step"), 8), RNG_STREAM_MOVE_DEATH,
                                 dest="death_stream")
            death_draw = b.rand_uniform(b.reg("seed"), death_stream, cell, dest="death_draw")
            survives = b.ge(death_draw, TCELL_DEATH_PROBABILITY, dest="survives")
            with b.if_then(survives):
                b.loc(13)
                move_stream = b.add(b.mul(b.reg("step"), 8), RNG_STREAM_MOVE_DIRECTION,
                                    dest="move_stream")
                move_draw = b.rand_uniform(b.reg("seed"), move_stream, cell, dest="move_draw")
                direction = b.emit("ftoi", b.mul(move_draw, 5.0), dest="direction")
                x = b.rem(cell, b.reg("width"), dest="x")
                y = b.div(cell, b.reg("width"), dest="y")
                target = b.mov(cell, dest="target")
                go_left = b.and_(b.eq(direction, 1), b.gt(x, 0), dest="go_left")
                target = b.select(go_left, b.sub(cell, 1), target, dest="target")
                go_right = b.and_(b.eq(direction, 2),
                                  b.lt(x, b.sub(b.reg("width"), 1)), dest="go_right")
                target = b.select(go_right, b.add(cell, 1), target, dest="target")
                go_up = b.and_(b.eq(direction, 3), b.gt(y, 0), dest="go_up")
                target = b.select(go_up, b.sub(cell, b.reg("width")), target, dest="target")
                go_down = b.and_(b.eq(direction, 4),
                                 b.lt(y, b.sub(b.reg("height"), 1)), dest="go_down")
                target = b.select(go_down, b.add(cell, b.reg("width")), target, dest="target")
                b.loc(22)
                previous = b.atomic_cas(b.reg("tcells_next"), target, 0, 1, dest="previous")
                blocked = b.ne(previous, 0, dest="blocked")
                with b.if_then(blocked):
                    b.loc(25)
                    b.atomic_cas(b.reg("tcells_next"), cell, 0, 1, dest="stay_result")
    b.ret()
    return b.build()


# --------------------------------------------------------------------------- kernel 4
def _build_update_epithelial() -> KernelBuilder:
    b = KernelBuilder(
        "simcov_update_epithelial",
        params=[Param("epithelial", "buffer"), Param("timer", "buffer"),
                Param("virions", "buffer"), Param("tcells", "buffer"),
                Param("n_cells", "scalar"), Param("infect_threshold", "scalar"),
                Param("incubation_period", "scalar"), Param("apoptosis_period", "scalar")],
        source_file="simcov_update_epithelial.cu",
    )
    b.block("entry")
    b.loc(6)
    cell = _global_cell_index(b)
    in_grid = b.lt(cell, b.reg("n_cells"), dest="in_grid")
    with b.if_then(in_grid):
        b.loc(8)
        state = b.load(b.reg("epithelial"), cell, dest="state")
        timer = b.load(b.reg("timer"), cell, dest="cell_timer")
        virions = b.load(b.reg("virions"), cell, dest="cell_virions")
        tcell = b.load(b.reg("tcells"), cell, dest="cell_tcell")

        b.loc(12)
        infected_now = b.and_(b.eq(state, HEALTHY),
                              b.gt(virions, b.reg("infect_threshold")), dest="infected_now")
        state1 = b.select(infected_now, INCUBATING, state, dest="state1")
        timer1 = b.select(infected_now, 0, timer, dest="timer1")

        b.loc(16)
        incubating = b.eq(state, INCUBATING, dest="incubating")
        timer2 = b.select(incubating, b.add(timer1, 1), timer1, dest="timer2")
        express_now = b.and_(incubating,
                             b.ge(timer2, b.reg("incubation_period")), dest="express_now")
        state2 = b.select(express_now, EXPRESSING, state1, dest="state2")
        timer3 = b.select(express_now, 0, timer2, dest="timer3")

        b.loc(21)
        expressing = b.eq(state, EXPRESSING, dest="expressing")
        killed = b.and_(expressing, b.gt(tcell, 0), dest="killed")
        state3 = b.select(killed, APOPTOTIC, state2, dest="state3")
        timer4 = b.select(killed, 0, timer3, dest="timer4")

        b.loc(25)
        apoptotic = b.eq(state, APOPTOTIC, dest="apoptotic")
        timer5 = b.select(apoptotic, b.add(timer4, 1), timer4, dest="timer5")
        dead_now = b.and_(apoptotic, b.ge(timer5, b.reg("apoptosis_period")), dest="dead_now")
        state4 = b.select(dead_now, DEAD, state3, dest="state4")

        b.loc(29)
        b.store(b.reg("epithelial"), cell, state4)
        b.store(b.reg("timer"), cell, timer5)
    b.ret()
    return b.build()


# --------------------------------------------------------------------------- kernel 5
def _build_produce() -> KernelBuilder:
    b = KernelBuilder(
        "simcov_produce",
        params=[Param("epithelial", "buffer"), Param("virions", "buffer"),
                Param("chemokine", "buffer"), Param("n_cells", "scalar"),
                Param("virion_production", "scalar"), Param("chemokine_production", "scalar")],
        source_file="simcov_produce.cu",
    )
    b.block("entry")
    b.loc(5)
    cell = _global_cell_index(b)
    in_grid = b.lt(cell, b.reg("n_cells"), dest="in_grid")
    with b.if_then(in_grid):
        b.loc(7)
        state = b.load(b.reg("epithelial"), cell, dest="state")
        with b.if_then(b.eq(state, EXPRESSING)):
            b.loc(9)
            virions = b.load(b.reg("virions"), cell, dest="cell_virions")
            b.store(b.reg("virions"), cell, b.add(virions, b.reg("virion_production")))
            signal = b.load(b.reg("chemokine"), cell, dest="cell_signal")
            b.store(b.reg("chemokine"), cell, b.add(signal, b.reg("chemokine_production")))
        with b.if_then(b.eq(state, APOPTOTIC)):
            b.loc(14)
            signal2 = b.load(b.reg("chemokine"), cell, dest="cell_signal2")
            half_production = b.mul(b.reg("chemokine_production"), 0.5)
            b.store(b.reg("chemokine"), cell, b.add(signal2, half_production))
    b.ret()
    return b.build()


# --------------------------------------------------------------------------- kernels 6 & 7
def _build_spread(kernel_name: str, field_name: str,
                  targets: Dict[str, int]) -> KernelBuilder:
    """Diffusion kernel for one scalar field, with naive 2D boundary checks.

    The boundary arithmetic deliberately mirrors a direct port of nested
    CPU loops: for every neighbour it recomputes the 2D coordinates, checks
    all four bounds, and only then forms the linear index.  These are the
    instructions the recorded GEVO edits delete.
    """
    b = KernelBuilder(
        kernel_name,
        params=[Param(field_name, "buffer"), Param(f"{field_name}_next", "buffer"),
                Param("n_cells", "scalar"), Param("width", "scalar"),
                Param("height", "scalar"), Param("diffusion", "scalar"),
                Param("decay", "scalar")],
        source_file=f"{kernel_name}.cu",
    )
    b.block("entry")
    b.loc(6)
    cell = _global_cell_index(b)
    in_grid = b.lt(cell, b.reg("n_cells"), dest="in_grid")
    with b.if_then(in_grid):
        b.loc(8)
        centre = b.load(b.reg(field_name), cell, dest="centre")
        # Redundant reload left over from the CPU port (its value is unused):
        # an easy, independent GEVO deletion target.
        b.load(b.reg(field_name), cell, dest="centre_again")
        targets["redundant_centre_load"] = b.last_emitted.uid

        x = b.rem(cell, b.reg("width"), dest="x")
        y = b.div(cell, b.reg("width"), dest="y")
        b.mov(0.0, dest="total")
        b.mov(0, dest="count")

        for name, dx, dy in DIRECTIONS:
            b.loc(12 + 8 * DIRECTIONS.index((name, dx, dy)))
            nx = b.add(x, dx, dest=f"nx_{name}")
            ny = b.add(y, dy, dest=f"ny_{name}")
            # The boundary check is a direct port of the CPU code's nested
            # loop guard: it re-derives the 2D coordinates from the flat cell
            # index (instead of reusing x / y above) and tests all four
            # bounds.  All of it is dead weight GEVO can remove.
            check_x = b.rem(cell, b.reg("width"), dest=f"checkx_{name}")
            targets[f"{name}_check_rem"] = b.last_emitted.uid
            check_y = b.div(cell, b.reg("width"), dest=f"checky_{name}")
            targets[f"{name}_check_div"] = b.last_emitted.uid
            check_nx = b.add(check_x, dx, dest=f"checknx_{name}")
            targets[f"{name}_check_add_x"] = b.last_emitted.uid
            check_ny = b.add(check_y, dy, dest=f"checkny_{name}")
            targets[f"{name}_check_add_y"] = b.last_emitted.uid
            ok_x_low = b.ge(check_nx, 0, dest=f"okxl_{name}")
            targets[f"{name}_cmp_x_low"] = b.last_emitted.uid
            ok_x_high = b.lt(check_nx, b.reg("width"), dest=f"okxh_{name}")
            targets[f"{name}_cmp_x_high"] = b.last_emitted.uid
            ok_y_low = b.ge(check_ny, 0, dest=f"okyl_{name}")
            targets[f"{name}_cmp_y_low"] = b.last_emitted.uid
            ok_y_high = b.lt(check_ny, b.reg("height"), dest=f"okyh_{name}")
            targets[f"{name}_cmp_y_high"] = b.last_emitted.uid
            ok_x = b.and_(ok_x_low, ok_x_high, dest=f"okx_{name}")
            targets[f"{name}_and_x"] = b.last_emitted.uid
            ok_y = b.and_(ok_y_low, ok_y_high, dest=f"oky_{name}")
            targets[f"{name}_and_y"] = b.last_emitted.uid
            ok = b.and_(ok_x, ok_y, dest=f"ok_{name}")
            targets[f"{name}_and_all"] = b.last_emitted.uid
            with b.if_then(ok) as boundary_branch:
                targets[f"{name}_branch"] = boundary_branch.uid
                index = b.add(b.mul(ny, b.reg("width")), nx, dest=f"idx_{name}")
                neighbour = b.load(b.reg(field_name), index, dest=f"value_{name}")
                b.add(b.reg("total"), neighbour, dest="total")
                b.add(b.reg("count"), 1, dest="count")

        b.loc(40)
        laplacian = b.sub(b.reg("total"), b.mul(b.reg("count"), centre), dest="laplacian")
        diffused = b.add(centre, b.mul(b.reg("diffusion"), laplacian), dest="diffused")
        retained = b.sub(1.0, b.reg("decay"), dest="retained")
        updated = b.mul(diffused, retained, dest="updated")
        updated = b.max(updated, 0.0, dest="updated_clamped")
        b.store(b.reg(f"{field_name}_next"), cell, updated)
    b.ret()
    return b.build()


# --------------------------------------------------------------------------- kernel 8
def _build_statistics() -> KernelBuilder:
    b = KernelBuilder(
        "simcov_statistics",
        params=[Param("virions", "buffer"), Param("chemokine", "buffer"),
                Param("tcells", "buffer"), Param("epithelial", "buffer"),
                Param("stats", "buffer"), Param("n_cells", "scalar")],
        source_file="simcov_statistics.cu",
    )
    b.block("entry")
    b.loc(5)
    cell = _global_cell_index(b)
    in_grid = b.lt(cell, b.reg("n_cells"), dest="in_grid")
    with b.if_then(in_grid):
        b.loc(7)
        virions = b.load(b.reg("virions"), cell, dest="cell_virions")
        b.atomic_add(b.reg("stats"), 0, virions)
        tcell = b.load(b.reg("tcells"), cell, dest="cell_tcell")
        b.atomic_add(b.reg("stats"), 1, tcell)
        state = b.load(b.reg("epithelial"), cell, dest="state")
        is_infected = b.or_(b.eq(state, INCUBATING), b.eq(state, EXPRESSING),
                            dest="is_infected")
        infected_value = b.select(is_infected, 1, 0, dest="infected_value")
        b.atomic_add(b.reg("stats"), 2, infected_value)
        is_dead = b.eq(state, DEAD, dest="is_dead")
        dead_value = b.select(is_dead, 1, 0, dest="dead_value")
        b.atomic_add(b.reg("stats"), 3, dead_value)
    b.ret()
    return b.build()


# --------------------------------------------------------------------------- public builder
_KERNELS: Optional[SimCovKernels] = None


def build_simcov_kernels() -> SimCovKernels:
    """Build the eight-kernel SIMCoV module and its edit-target map.

    Memoized: the builder takes no arguments and the module is immutable
    (GEVO clones before editing), so repeated driver constructions reuse
    the same ``Function`` objects and hit the simulator's decode/JIT
    caches instead of rebuilding and re-decoding the IR.
    """
    global _KERNELS
    if _KERNELS is None:
        _KERNELS = _build_simcov_kernels()
    return _KERNELS


def _build_simcov_kernels() -> SimCovKernels:
    edit_targets: Dict[str, Dict[str, int]] = {
        "simcov_spread_virions": {},
        "simcov_spread_chemokine": {},
    }
    functions = [
        _build_init(),
        _build_extravasate(),
        _build_move_tcells(),
        _build_update_epithelial(),
        _build_produce(),
        _build_spread("simcov_spread_virions", "virions",
                      edit_targets["simcov_spread_virions"]),
        _build_spread("simcov_spread_chemokine", "chemokine",
                      edit_targets["simcov_spread_chemokine"]),
        _build_statistics(),
    ]
    module = build_module("simcov", *functions)
    return SimCovKernels(module=module, edit_targets=edit_targets)
