"""Simulation state of the SIMCoV model.

The state is a set of flat per-cell arrays (float64 so they can live in the
simulated GPU's unified memory arena): epithelial state, state timer,
virion concentration, inflammatory-signal (chemokine) concentration, T-cell
occupancy and T-cell remaining lifespan, plus double buffers for the
diffusion and movement kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .params import APOPTOTIC, DEAD, EXPRESSING, HEALTHY, INCUBATING, SimCovParams


@dataclass
class SimCovState:
    """All per-cell arrays of one simulation instance."""

    params: SimCovParams
    epithelial: np.ndarray
    timer: np.ndarray
    virions: np.ndarray
    virions_next: np.ndarray
    chemokine: np.ndarray
    chemokine_next: np.ndarray
    tcells: np.ndarray
    tcells_next: np.ndarray
    tcell_life: np.ndarray
    step: int = 0

    @classmethod
    def initial(cls, params: SimCovParams) -> "SimCovState":
        """Fresh state: healthy epithelium everywhere, virions at the infection sites."""
        cells = params.cells
        state = cls(
            params=params,
            epithelial=np.full(cells, HEALTHY, dtype=np.float64),
            timer=np.zeros(cells, dtype=np.float64),
            virions=np.zeros(cells, dtype=np.float64),
            virions_next=np.zeros(cells, dtype=np.float64),
            chemokine=np.zeros(cells, dtype=np.float64),
            chemokine_next=np.zeros(cells, dtype=np.float64),
            tcells=np.zeros(cells, dtype=np.float64),
            tcells_next=np.zeros(cells, dtype=np.float64),
            tcell_life=np.zeros(cells, dtype=np.float64),
        )
        for cell in params.infection_cells():
            state.virions[cell] = params.initial_virions
        return state

    # -- views ---------------------------------------------------------------------
    def grid(self, name: str) -> np.ndarray:
        """A (height, width) view of one field, for plotting or inspection."""
        array = getattr(self, name)
        return array.reshape(self.params.height, self.params.width)

    def copy(self) -> "SimCovState":
        return SimCovState(
            params=self.params,
            epithelial=self.epithelial.copy(),
            timer=self.timer.copy(),
            virions=self.virions.copy(),
            virions_next=self.virions_next.copy(),
            chemokine=self.chemokine.copy(),
            chemokine_next=self.chemokine_next.copy(),
            tcells=self.tcells.copy(),
            tcells_next=self.tcells_next.copy(),
            tcell_life=self.tcell_life.copy(),
            step=self.step,
        )

    # -- summary metrics -------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Aggregate observables, the quantities SIMCoV reports per time step."""
        epithelial = self.epithelial
        return {
            "step": float(self.step),
            "total_virions": float(self.virions.sum()),
            "total_chemokine": float(self.chemokine.sum()),
            "num_tcells": float(self.tcells.sum()),
            "healthy": float(np.count_nonzero(epithelial == HEALTHY)),
            "incubating": float(np.count_nonzero(epithelial == INCUBATING)),
            "expressing": float(np.count_nonzero(epithelial == EXPRESSING)),
            "apoptotic": float(np.count_nonzero(epithelial == APOPTOTIC)),
            "dead": float(np.count_nonzero(epithelial == DEAD)),
        }

    def swap_diffusion_buffers(self) -> None:
        """Swap current/next buffers after the diffusion kernels of one step."""
        self.virions, self.virions_next = self.virions_next, self.virions
        self.chemokine, self.chemokine_next = self.chemokine_next, self.chemokine

    def swap_tcell_buffers(self) -> None:
        self.tcells, self.tcells_next = self.tcells_next, self.tcells
