"""The paper workloads (ADEPT, SIMCoV) plus a tiny toy workload for demos/tests."""

from .toy import ToyKernel, ToyWorkloadAdapter, build_toy_kernel, toy_discovered_edits

__all__ = [
    "ToyKernel",
    "ToyWorkloadAdapter",
    "adept",
    "build_toy_kernel",
    "simcov",
    "toy_discovered_edits",
]
