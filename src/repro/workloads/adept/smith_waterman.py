"""CPU reference implementation of Smith-Waterman local alignment.

This is the ground truth the GPU kernels (and every GEVO variant of them)
are validated against: gene-sequence alignment "often requires strict
accuracy so we require 100% accuracy for our ADEPT validation"
(Section III-C).  The scoring scheme follows the paper's Figure 2 example:
+2 for a match, -2 for a mismatch and -1 per gap (linear gap penalty).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: Default scoring scheme (Figure 2 of the paper).
MATCH_SCORE = 2
MISMATCH_PENALTY = -2
GAP_PENALTY = -1


@dataclass(frozen=True)
class ScoringScheme:
    """Scores used by the Smith-Waterman recurrence."""

    match: int = MATCH_SCORE
    mismatch: int = MISMATCH_PENALTY
    gap: int = GAP_PENALTY

    def similarity(self, a: str, b: str) -> int:
        return self.match if a == b else self.mismatch


def score_matrix(seq_a: str, seq_b: str, scheme: ScoringScheme = ScoringScheme()) -> np.ndarray:
    """Full (len_a + 1) x (len_b + 1) Smith-Waterman scoring matrix."""
    len_a, len_b = len(seq_a), len(seq_b)
    matrix = np.zeros((len_a + 1, len_b + 1), dtype=np.int64)
    for i in range(1, len_a + 1):
        for j in range(1, len_b + 1):
            diagonal = matrix[i - 1, j - 1] + scheme.similarity(seq_a[i - 1], seq_b[j - 1])
            vertical = matrix[i - 1, j] + scheme.gap
            horizontal = matrix[i, j - 1] + scheme.gap
            matrix[i, j] = max(0, diagonal, vertical, horizontal)
    return matrix


def alignment_score(seq_a: str, seq_b: str, scheme: ScoringScheme = ScoringScheme()) -> int:
    """Optimal local alignment score of two sequences."""
    if not seq_a or not seq_b:
        return 0
    return int(score_matrix(seq_a, seq_b, scheme).max())


def alignment_end_position(seq_a: str, seq_b: str,
                           scheme: ScoringScheme = ScoringScheme()) -> Tuple[int, int]:
    """(row, column) of the highest-scoring cell (1-based, as in Figure 2)."""
    matrix = score_matrix(seq_a, seq_b, scheme)
    flat_index = int(matrix.argmax())
    rows, cols = matrix.shape
    return (flat_index // cols, flat_index % cols)


def traceback(seq_a: str, seq_b: str,
              scheme: ScoringScheme = ScoringScheme()) -> Tuple[str, str]:
    """Recover one optimal local alignment (reverse pass of Figure 2(c))."""
    matrix = score_matrix(seq_a, seq_b, scheme)
    i, j = alignment_end_position(seq_a, seq_b, scheme)
    aligned_a: List[str] = []
    aligned_b: List[str] = []
    while i > 0 and j > 0 and matrix[i, j] > 0:
        current = matrix[i, j]
        if current == matrix[i - 1, j - 1] + scheme.similarity(seq_a[i - 1], seq_b[j - 1]):
            aligned_a.append(seq_a[i - 1])
            aligned_b.append(seq_b[j - 1])
            i, j = i - 1, j - 1
        elif current == matrix[i - 1, j] + scheme.gap:
            aligned_a.append(seq_a[i - 1])
            aligned_b.append("-")
            i -= 1
        else:
            aligned_a.append("-")
            aligned_b.append(seq_b[j - 1])
            j -= 1
    return "".join(reversed(aligned_a)), "".join(reversed(aligned_b))


def batch_alignment_scores(pairs: Sequence[Tuple[str, str]],
                           scheme: ScoringScheme = ScoringScheme()) -> np.ndarray:
    """Alignment scores for a batch of pairs.

    Accepts ``(reference, query)`` tuples or any object exposing
    ``.reference`` / ``.query`` attributes (such as
    :class:`~repro.workloads.adept.sequences.SequencePair`).
    """
    scores = []
    for pair in pairs:
        if hasattr(pair, "reference"):
            reference, query = pair.reference, pair.query
        else:
            reference, query = pair
        scores.append(alignment_score(reference, query, scheme))
    return np.array(scores, dtype=np.int64)


def wavefront_alignment_score(seq_a: str, seq_b: str,
                              scheme: ScoringScheme = ScoringScheme()) -> int:
    """Anti-diagonal (wavefront) formulation of the same recurrence.

    This mirrors the parallel decomposition the GPU kernels use -- one
    "thread" per column, iterating over anti-diagonals -- and exists purely
    as an executable cross-check that the wavefront schedule computes the
    same scores as the classical row-major loop.
    """
    len_a, len_b = len(seq_a), len(seq_b)
    if len_a == 0 or len_b == 0:
        return 0
    prev_h = np.zeros(len_b, dtype=np.int64)        # H[i-1][j] per column j
    prev_prev_h = np.zeros(len_b, dtype=np.int64)   # H[i-2][j] per column j
    best = 0
    for diag in range(len_a + len_b - 1):
        current = np.zeros(len_b, dtype=np.int64)
        for j in range(len_b):
            i = diag - j
            if i < 0 or i >= len_a:
                current[j] = prev_h[j]
                continue
            north_west = prev_prev_h[j - 1] if j > 0 else 0
            west = prev_h[j - 1] if j > 0 else 0
            north = prev_h[j]
            if i == 0:
                north = 0
                north_west = 0
            if j == 0:
                west = 0
                north_west = 0
            score = max(0,
                        north_west + scheme.similarity(seq_a[i], seq_b[j]),
                        north + scheme.gap,
                        west + scheme.gap)
            current[j] = score
            best = max(best, score)
        prev_prev_h = prev_h
        prev_h = current
    return int(best)
