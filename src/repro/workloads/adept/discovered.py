"""Recorded GEVO-discovered edit sets for ADEPT.

The paper analyses the best GEVO individuals in depth (Sections V and VI)
and names the performance-relevant edits; this module encodes those edits
against our kernels so every experiment (Figures 4, 7 and 8, the
ballot_sync study, the cross-GPU generality study) can replay them
deterministically.  The same edits are expressible by GEVO's random
operators -- they are ordinary operand-replacement and deletion edits over
instructions of the kernel -- which is what the scaled-down live searches
demonstrate.

Substitution note (edit 5): in the paper, edit 5 redirects the now-dead
per-warp staging store from lane 31 to lane 0, which on real hardware is
performance-equivalent to deleting the store because the access gets
scheduled off the critical path.  Our cost model has no such scheduling
effect, so the recorded edit redirects the lane comparison to a value no
lane can match (the block dimension), which skips the dead store outright.
Both variants are only functionally safe once edits 6, 8 and 10 have routed
every exchange through the per-thread shared arrays -- the dependency
structure of Figure 7 is preserved.
"""

from __future__ import annotations

from typing import Dict, List

from ...gevo.edits import Edit, InstructionDelete, OperandReplace
from ...ir.values import Const, Reg
from .kernel_v1 import AdeptKernel

#: Paper edit indices of the main epistatic cluster of ADEPT-V1 (Figure 7).
EPISTATIC_CLUSTER = (5, 6, 8, 10)


def _require_targets(kernel: AdeptKernel, names: List[str]) -> None:
    missing = [name for name in names if name not in kernel.edit_targets]
    if missing:
        raise KeyError(
            f"kernel {kernel.version} does not expose edit targets {missing}; "
            "was it built by build_adept_v0/build_adept_v1?")


# --------------------------------------------------------------------------- ADEPT-V1
def adept_v1_edit(kernel: AdeptKernel, paper_index: int) -> Edit:
    """The recorded edit with the paper's index (5, 6, 8 or 10) for ADEPT-V1."""
    _require_targets(kernel, ["edit5_lane_compare", "edit6_publish_branch",
                              "edit8_exchange_branch", "edit10_exchange_branch"])
    targets = kernel.edit_targets
    if paper_index == 5:
        return OperandReplace(targets["edit5_lane_compare"], 1, Reg("bdim"))
    if paper_index == 6:
        return OperandReplace(targets["edit6_publish_branch"], 0, Reg("valid"))
    if paper_index == 8:
        return OperandReplace(targets["edit8_exchange_branch"], 0, Reg("valid"))
    if paper_index == 10:
        return OperandReplace(targets["edit10_exchange_branch"], 0, Reg("valid"))
    raise KeyError(f"no recorded ADEPT-V1 edit with paper index {paper_index}")


def adept_v1_epistatic_edits(kernel: AdeptKernel) -> Dict[int, Edit]:
    """The epistatic cluster {5, 6, 8, 10} keyed by the paper's edit index."""
    return {index: adept_v1_edit(kernel, index) for index in EPISTATIC_CLUSTER}


def adept_v1_independent_edits(kernel: AdeptKernel) -> Dict[str, Edit]:
    """The independent edits of Section V-B / VI-B for ADEPT-V1.

    * removing the redundant defensive ``__syncthreads`` in the wavefront loop;
    * removing the two "conservative" ``ballot_sync`` calls guarding the
      shuffles (beneficial on Volta, neutral on Pascal -- Section VI-B).
    """
    _require_targets(kernel, ["redundant_syncthreads", "ballot_sync_1", "ballot_sync_2"])
    targets = kernel.edit_targets
    return {
        "remove_redundant_syncthreads": InstructionDelete(targets["redundant_syncthreads"]),
        "remove_ballot_sync_1": InstructionDelete(targets["ballot_sync_1"]),
        "remove_ballot_sync_2": InstructionDelete(targets["ballot_sync_2"]),
    }


def adept_v1_discovered_edits(kernel: AdeptKernel) -> List[Edit]:
    """The full recorded optimization for ADEPT-V1 (epistatic + independent)."""
    edits: List[Edit] = []
    epistatic = adept_v1_epistatic_edits(kernel)
    # Discovery order from Figure 8: 6 first, then 8, then 10, then 5.
    for index in (6, 8, 10, 5):
        edits.append(epistatic[index])
    edits.extend(adept_v1_independent_edits(kernel).values())
    return edits


def adept_v1_ballot_sync_edits(kernel: AdeptKernel) -> List[Edit]:
    """Only the ballot_sync-removal edits (the Section VI-B study)."""
    independent = adept_v1_independent_edits(kernel)
    return [independent["remove_ballot_sync_1"], independent["remove_ballot_sync_2"]]


# --------------------------------------------------------------------------- ADEPT-V0
def adept_v0_discovered_edits(kernel: AdeptKernel) -> List[Edit]:
    """The recorded ADEPT-V0 optimization: disable the re-initialization region.

    A single operand replacement rewrites the clearing loop's bound to zero,
    which removes the per-diagonal memset + ``__syncthreads`` storm exactly
    as the paper's Section VI-C edit does (the initialization is redundant:
    every value the compute phase reads is published earlier in the same
    iteration).
    """
    _require_targets(kernel, ["clear_loop_compare"])
    return [OperandReplace(kernel.edit_targets["clear_loop_compare"], 1, Const(0))]


def adept_v0_partial_edits(kernel: AdeptKernel) -> Dict[str, Edit]:
    """Partial (weaker) variants of the V0 optimization, used in analyses.

    Deleting only the memsets or only the barriers removes part of the cost;
    the experiments use these to show the full region removal dominates.
    """
    _require_targets(kernel, ["clear_memset_prev", "clear_memset_prev_prev",
                              "clear_sync_after"])
    targets = kernel.edit_targets
    return {
        "delete_memset_prev": InstructionDelete(targets["clear_memset_prev"]),
        "delete_memset_prev_prev": InstructionDelete(targets["clear_memset_prev_prev"]),
        "delete_sync": InstructionDelete(targets["clear_sync_after"]),
    }
