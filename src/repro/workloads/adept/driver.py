"""Host-side driver and GEVO adapter for the ADEPT workload.

The driver plays the role of ADEPT's host code after the paper's
modification: it owns the device buffers, launches the (possibly
GEVO-modified) kernel module, and checks results against the CPU
Smith-Waterman reference.  The :class:`AdeptWorkloadAdapter` wraps this as
the :class:`~repro.gevo.fitness.WorkloadAdapter` interface used by the
GEVO search, the baselines and the analysis algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...errors import KernelTrap, LaunchError, ValidationError
from ...gevo.fitness import CaseResult, FitnessResult, WorkloadAdapter
from ...gpu import GpuArch, GpuDevice, P100
from ...ir import Module
from .kernel_v0 import build_adept_v0
from .kernel_v1 import AdeptKernel, build_adept_v1, _round_up_to_warp
from .sequences import EncodedBatch, SequencePair, encode_batch, fitness_pairs, heldout_pairs
from .smith_waterman import batch_alignment_scores


@dataclass
class AdeptRunResult:
    """Result of aligning one batch on the simulated GPU."""

    scores: np.ndarray
    best_score: int
    kernel_time_ms: float
    launch_results: List[object]


class AdeptDriver:
    """Launches an ADEPT kernel module over a batch of sequence pairs."""

    def __init__(self, kernel: AdeptKernel, device: Optional[GpuDevice] = None):
        self.kernel = kernel
        self.device = device or GpuDevice(P100)

    @classmethod
    def for_version(cls, version: str, pairs: Sequence[SequencePair],
                    device: Optional[GpuDevice] = None,
                    warp_size: int = 32) -> "AdeptDriver":
        """Build the kernel sized for *pairs* and wrap it in a driver."""
        batch = encode_batch(pairs)
        block_threads = _round_up_to_warp(batch.max_query_length, warp_size)
        if version == "v0":
            kernel = build_adept_v0(block_threads, batch.max_reference_length, warp_size)
        elif version == "v1":
            kernel = build_adept_v1(block_threads, batch.max_reference_length, warp_size)
        else:
            raise ValidationError(f"unknown ADEPT version {version!r} (expected 'v0' or 'v1')")
        return cls(kernel, device)

    # -- execution -------------------------------------------------------------------
    def run(self, pairs: Sequence[SequencePair],
            module: Optional[Module] = None) -> AdeptRunResult:
        """Align *pairs* using *module* (defaults to the unmodified kernel)."""
        module = module if module is not None else self.kernel.module
        batch = encode_batch(pairs)
        if batch.max_query_length > self.kernel.block_threads:
            raise LaunchError(
                f"batch contains a query of length {batch.max_query_length} but the kernel "
                f"was built for at most {self.kernel.block_threads} threads per block")
        if batch.max_reference_length > self.kernel.max_reference_length:
            raise LaunchError(
                f"batch contains a reference of length {batch.max_reference_length} but the "
                f"kernel caches at most {self.kernel.max_reference_length} characters")
        scores = np.zeros(batch.pair_count, dtype=np.int64)
        args = self._kernel_args(batch, scores)
        launches = []
        main = self.device.launch(module, grid=batch.pair_count,
                                  block=self.kernel.block_threads, args=args,
                                  kernel_name=self.kernel.main_kernel_name)
        launches.append(main)
        total_time = main.time_ms
        best_score = int(scores.max()) if scores.size else 0
        if "adept_v1_reduce" in module.function_order():
            best_out = np.zeros(1, dtype=np.int64)
            reduce_launch = self.device.launch(
                module, grid=1, block=64,
                args={"scores": scores, "best_out": best_out,
                      "n_pairs": batch.pair_count},
                kernel_name="adept_v1_reduce")
            launches.append(reduce_launch)
            total_time += reduce_launch.time_ms
            best_score = int(best_out[0])
        return AdeptRunResult(scores=scores, best_score=best_score,
                              kernel_time_ms=total_time, launch_results=launches)

    @staticmethod
    def _kernel_args(batch: EncodedBatch, scores: np.ndarray) -> Dict[str, object]:
        return {
            "seq_a": batch.seq_a, "seq_b": batch.seq_b,
            "offsets_a": batch.offsets_a, "offsets_b": batch.offsets_b,
            "lens_a": batch.lengths_a, "lens_b": batch.lengths_b,
            "scores": scores,
        }


class AdeptWorkloadAdapter(WorkloadAdapter):
    """GEVO adapter: fitness = kernel time, validity = 100% score accuracy."""

    def __init__(self, version: str = "v1",
                 arch: GpuArch = P100,
                 fitness_cases: Optional[Sequence[Sequence[SequencePair]]] = None,
                 validation_pairs: Optional[Sequence[SequencePair]] = None,
                 device: Optional[GpuDevice] = None):
        self.version = version
        self.arch = arch
        self.device = device or GpuDevice(arch)
        if fitness_cases is None:
            pairs = fitness_pairs()
            # Two fitness cases with different length regimes (single- and
            # multi-warp blocks), mirroring the paper's multiple test cases.
            fitness_cases = [pairs[: len(pairs) // 2], pairs[len(pairs) // 2:]]
        self.fitness_cases: List[List[SequencePair]] = [list(case) for case in fitness_cases]
        self.validation_pairs = list(validation_pairs) if validation_pairs is not None \
            else heldout_pairs()
        all_pairs = [pair for case in self.fitness_cases for pair in case] + self.validation_pairs
        self.driver = AdeptDriver.for_version(version, all_pairs, self.device)
        self._expected = {
            id(case): batch_alignment_scores(case) for case in self.fitness_cases
        }
        self._expected_validation = batch_alignment_scores(self.validation_pairs)
        self.name = f"ADEPT-{version.upper()} on {self.arch.name}"

    # -- WorkloadAdapter interface ----------------------------------------------------
    def original_module(self) -> Module:
        return self.driver.kernel.module

    @property
    def kernel(self) -> AdeptKernel:
        return self.driver.kernel

    def evaluate(self, module: Module) -> FitnessResult:
        cases = []
        for index, case_pairs in enumerate(self.fitness_cases):
            cases.append(self._run_case(module, case_pairs,
                                        self._expected[id(case_pairs)],
                                        name=f"fitness-{index}"))
        return FitnessResult.from_cases(cases)

    def validate(self, module: Module) -> FitnessResult:
        case = self._run_case(module, self.validation_pairs,
                              self._expected_validation, name="held-out")
        return FitnessResult.from_cases([case])

    # -- helpers -----------------------------------------------------------------------
    def _run_case(self, module: Module, pairs: Sequence[SequencePair],
                  expected: np.ndarray, name: str) -> CaseResult:
        try:
            result = self.driver.run(pairs, module=module)
        except (KernelTrap, LaunchError) as exc:
            return CaseResult(name=name, passed=False, runtime_ms=math.inf, message=str(exc))
        if np.array_equal(result.scores, expected):
            return CaseResult(name=name, passed=True, runtime_ms=result.kernel_time_ms)
        mismatches = int(np.count_nonzero(result.scores != expected))
        return CaseResult(
            name=name, passed=False, runtime_ms=result.kernel_time_ms,
            message=f"{mismatches}/{len(expected)} alignment scores differ from the "
                    "CPU Smith-Waterman reference")
