"""ADEPT: GPU-accelerated Smith-Waterman sequence alignment (paper Section II-B).

Public surface:

* CPU reference: :func:`alignment_score`, :func:`score_matrix`, :func:`traceback`
* datasets: :func:`generate_pairs`, :func:`fitness_pairs`, :func:`heldout_pairs`
* kernels: :func:`build_adept_v0`, :func:`build_adept_v1`
* host driver / GEVO adapter: :class:`AdeptDriver`, :class:`AdeptWorkloadAdapter`
* recorded GEVO edits: :func:`adept_v0_discovered_edits`,
  :func:`adept_v1_discovered_edits`, :func:`adept_v1_epistatic_edits`
"""

from .discovered import (
    EPISTATIC_CLUSTER,
    adept_v0_discovered_edits,
    adept_v0_partial_edits,
    adept_v1_ballot_sync_edits,
    adept_v1_discovered_edits,
    adept_v1_edit,
    adept_v1_epistatic_edits,
    adept_v1_independent_edits,
)
from .driver import AdeptDriver, AdeptRunResult, AdeptWorkloadAdapter
from .kernel_v0 import build_adept_v0
from .kernel_v1 import AdeptKernel, build_adept_v1
from .sequences import (
    ALPHABET,
    EncodedBatch,
    SequencePair,
    encode_batch,
    encode_sequence,
    fitness_pairs,
    generate_pairs,
    heldout_pairs,
    mutate_sequence,
    random_sequence,
    search_pairs,
)
from .smith_waterman import (
    GAP_PENALTY,
    MATCH_SCORE,
    MISMATCH_PENALTY,
    ScoringScheme,
    alignment_end_position,
    alignment_score,
    batch_alignment_scores,
    score_matrix,
    traceback,
    wavefront_alignment_score,
)

__all__ = [
    "ALPHABET",
    "AdeptDriver",
    "AdeptKernel",
    "AdeptRunResult",
    "AdeptWorkloadAdapter",
    "EPISTATIC_CLUSTER",
    "EncodedBatch",
    "GAP_PENALTY",
    "MATCH_SCORE",
    "MISMATCH_PENALTY",
    "ScoringScheme",
    "SequencePair",
    "adept_v0_discovered_edits",
    "adept_v0_partial_edits",
    "adept_v1_ballot_sync_edits",
    "adept_v1_discovered_edits",
    "adept_v1_edit",
    "adept_v1_epistatic_edits",
    "adept_v1_independent_edits",
    "alignment_end_position",
    "alignment_score",
    "batch_alignment_scores",
    "build_adept_v0",
    "build_adept_v1",
    "encode_batch",
    "encode_sequence",
    "fitness_pairs",
    "generate_pairs",
    "heldout_pairs",
    "mutate_sequence",
    "random_sequence",
    "score_matrix",
    "search_pairs",
    "traceback",
    "wavefront_alignment_score",
]
