"""Synthetic DNA datasets for the ADEPT workload.

The paper evaluates on 30,000 DNA pairs from the ADEPT repository for
fitness and 4.6 million held-out pairs for final validation.  Neither
dataset is available offline, so this module generates synthetic pairs
with a seeded RNG: a random reference sequence plus a query derived from a
window of the reference with point mutations and indels (which gives the
realistic mix of high- and low-scoring local alignments the kernels see in
practice).  The scaling to far fewer / shorter pairs is recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: DNA alphabet and its integer encoding used by the GPU kernels.
ALPHABET = "ACGT"
ENCODING: Dict[str, int] = {base: index for index, base in enumerate(ALPHABET)}


@dataclass(frozen=True)
class SequencePair:
    """One (reference, query) pair to align."""

    reference: str
    query: str

    def __post_init__(self):
        for sequence in (self.reference, self.query):
            if not sequence or any(base not in ENCODING for base in sequence):
                raise ValueError(f"sequence {sequence!r} is empty or not over {ALPHABET!r}")


def random_sequence(length: int, rng: np.random.Generator) -> str:
    """A uniformly random DNA sequence of the given length."""
    if length <= 0:
        raise ValueError("sequence length must be positive")
    indices = rng.integers(0, len(ALPHABET), size=length)
    return "".join(ALPHABET[i] for i in indices)


def mutate_sequence(sequence: str, rng: np.random.Generator,
                    substitution_rate: float = 0.1, indel_rate: float = 0.05) -> str:
    """Apply random substitutions and indels -- produces a related query."""
    output: List[str] = []
    for base in sequence:
        roll = rng.random()
        if roll < indel_rate / 2:
            continue  # deletion
        if roll < indel_rate:
            output.append(ALPHABET[rng.integers(0, 4)])  # insertion
        if rng.random() < substitution_rate:
            output.append(ALPHABET[rng.integers(0, 4)])
        else:
            output.append(base)
    if not output:
        output.append(sequence[0])
    return "".join(output)


def generate_pairs(count: int, reference_length: int, query_length: int,
                   seed: int = 0, related_fraction: float = 0.8) -> List[SequencePair]:
    """Generate *count* synthetic pairs.

    ``related_fraction`` of the queries are mutated windows of their
    reference (high alignment scores); the rest are unrelated random
    sequences (low scores), so validation exercises both regimes.
    """
    if count <= 0:
        raise ValueError("pair count must be positive")
    rng = np.random.default_rng(seed)
    pairs: List[SequencePair] = []
    for index in range(count):
        reference = random_sequence(reference_length, rng)
        if rng.random() < related_fraction:
            window = min(query_length + 4, reference_length)
            start = int(rng.integers(0, max(1, reference_length - window + 1)))
            query = mutate_sequence(reference[start:start + window], rng)
        else:
            query = random_sequence(query_length, rng)
        query = query[:query_length]
        if not query:
            query = random_sequence(query_length, rng)
        pairs.append(SequencePair(reference=reference, query=query))
    return pairs


def encode_sequence(sequence: str) -> np.ndarray:
    """Encode a DNA string as an int64 numpy array (A=0, C=1, G=2, T=3)."""
    return np.array([ENCODING[base] for base in sequence], dtype=np.int64)


@dataclass
class EncodedBatch:
    """Flattened device-friendly representation of a batch of pairs.

    Mirrors how ADEPT ships batches to the GPU: two concatenated character
    arrays plus per-pair offsets and lengths.
    """

    seq_a: np.ndarray
    seq_b: np.ndarray
    offsets_a: np.ndarray
    offsets_b: np.ndarray
    lengths_a: np.ndarray
    lengths_b: np.ndarray

    @property
    def pair_count(self) -> int:
        return int(self.lengths_a.shape[0])

    @property
    def max_query_length(self) -> int:
        return int(self.lengths_b.max())

    @property
    def max_reference_length(self) -> int:
        return int(self.lengths_a.max())


def encode_batch(pairs: Sequence[SequencePair]) -> EncodedBatch:
    """Flatten a batch of pairs into the device buffer layout."""
    if not pairs:
        raise ValueError("cannot encode an empty batch")
    seq_a_parts = [encode_sequence(pair.reference) for pair in pairs]
    seq_b_parts = [encode_sequence(pair.query) for pair in pairs]
    lengths_a = np.array([len(pair.reference) for pair in pairs], dtype=np.int64)
    lengths_b = np.array([len(pair.query) for pair in pairs], dtype=np.int64)
    offsets_a = np.concatenate([[0], np.cumsum(lengths_a)[:-1]]).astype(np.int64)
    offsets_b = np.concatenate([[0], np.cumsum(lengths_b)[:-1]]).astype(np.int64)
    return EncodedBatch(
        seq_a=np.concatenate(seq_a_parts),
        seq_b=np.concatenate(seq_b_parts),
        offsets_a=offsets_a,
        offsets_b=offsets_b,
        lengths_a=lengths_a,
        lengths_b=lengths_b,
    )


def fitness_pairs(seed: int = 11) -> List[SequencePair]:
    """The scaled-down stand-in for ADEPT's 30,000-pair fitness set.

    Two length regimes are included on purpose: single-warp pairs (queries
    shorter than 32) and multi-warp pairs (queries spanning three warps),
    because several of the paper's discovered edits are only exercised --
    and their failure modes only exposed -- when a block spans more than
    one warp.
    """
    short = generate_pairs(2, reference_length=40, query_length=24, seed=seed)
    long = generate_pairs(2, reference_length=88, query_length=72, seed=seed + 1)
    return short + long


def search_pairs(seed: int = 23) -> List[SequencePair]:
    """An even smaller fitness set used by live (scaled-down) GEVO searches.

    Kept to two pairs -- one single-warp, one two-warp -- so that a search
    over hundreds of variants completes in seconds on the simulator while
    still exposing the multi-warp failure modes.
    """
    short = generate_pairs(1, reference_length=36, query_length=22, seed=seed)
    long = generate_pairs(1, reference_length=56, query_length=44, seed=seed + 1)
    return short + long


def heldout_pairs(seed: int = 97, count: int = 16) -> List[SequencePair]:
    """The scaled-down stand-in for the 4.6M-pair held-out validation set."""
    half = count // 2
    short = generate_pairs(half, reference_length=48, query_length=28, seed=seed)
    long = generate_pairs(count - half, reference_length=96, query_length=72, seed=seed + 1)
    return short + long


__all__ = [
    "ALPHABET",
    "ENCODING",
    "EncodedBatch",
    "SequencePair",
    "encode_batch",
    "encode_sequence",
    "fitness_pairs",
    "generate_pairs",
    "heldout_pairs",
    "mutate_sequence",
    "random_sequence",
    "search_pairs",
]
