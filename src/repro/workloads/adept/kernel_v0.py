"""ADEPT-V0: the original, unoptimized GPU Smith-Waterman kernel.

This mirrors the paper's description of the pre-hand-tuning version
(Sections III-B and VI-C):

* a single kernel (no reduction helper, no reference-sequence cache in
  shared memory -- every cell re-reads the reference character from global
  memory);
* neighbour exchange exclusively through per-thread shared arrays with a
  barrier per diagonal;
* the pathological initialization region: on **every** diagonal iteration,
  **every** thread re-clears the entire (oversized) shared score buffers,
  with defensive ``__syncthreads`` calls inside the clearing loop.  This is
  the region whose removal GEVO discovers, improving the kernel by more
  than an order of magnitude ("GPU threads block each other to initialize
  the same memory region over and over again", Section VI-C).

The builder records the uids of the clearing loop's bound comparison, its
``memset`` instructions and its barriers so the recorded edit set in
:mod:`repro.workloads.adept.discovered` can disable the region exactly the
way the paper reports.
"""

from __future__ import annotations

from typing import Dict

from ...ir import KernelBuilder, Param, SharedDecl, build_module
from .kernel_v1 import AdeptKernel, _round_up_to_warp
from .smith_waterman import GAP_PENALTY, MATCH_SCORE, MISMATCH_PENALTY


def build_adept_v0(block_threads: int, max_reference_length: int,
                   warp_size: int = 32) -> AdeptKernel:
    """Build the naive ADEPT-V0 module for a given launch shape.

    Memoized by shape (see ``kernel_v1._KERNEL_CACHE``): the builder is a
    pure function of its arguments and the shared module must be treated
    as immutable.
    """
    from .kernel_v1 import _KERNEL_CACHE
    key = ("v0", _round_up_to_warp(block_threads, warp_size),
           max_reference_length, warp_size)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        kernel = _KERNEL_CACHE[key] = _build_adept_v0(
            block_threads, max_reference_length, warp_size)
    return kernel


def _build_adept_v0(block_threads: int, max_reference_length: int,
                    warp_size: int = 32) -> AdeptKernel:
    block_threads = _round_up_to_warp(block_threads, warp_size)
    # The naive implementation over-sizes its shared buffers by a warp of
    # slack "to be safe" -- and then re-clears the whole allocation every
    # diagonal, which is why the region removal is worth ~30x.
    buffer_size = block_threads + warp_size
    targets: Dict[str, int] = {}

    params = [
        Param("seq_a", "buffer"), Param("seq_b", "buffer"),
        Param("offsets_a", "buffer"), Param("offsets_b", "buffer"),
        Param("lens_a", "buffer"), Param("lens_b", "buffer"),
        Param("scores", "buffer"),
    ]
    shared = [
        SharedDecl("score_prev", buffer_size, "int"),
        SharedDecl("score_prev_prev", buffer_size, "int"),
    ]
    b = KernelBuilder("adept_v0_kernel", params=params, shared=shared,
                      source_file="adept_v0_kernel.cu")

    # ----------------------------------------------------------------- prologue
    b.block("entry")
    b.loc(8)
    tid = b.tid_x(dest="tid")
    pair = b.bid_x(dest="pair")
    off_a = b.load(b.reg("offsets_a"), pair, dest="off_a")
    off_b = b.load(b.reg("offsets_b"), pair, dest="off_b")
    len_a = b.load(b.reg("lens_a"), pair, dest="len_a")
    len_b = b.load(b.reg("lens_b"), pair, dest="len_b")
    valid = b.lt(tid, len_b, dest="valid")
    safe_tid = b.min(tid, b.sub(len_b, 1))
    b_char = b.load(b.reg("seq_b"), b.add(off_b, safe_tid), dest="b_char")
    b.mov(0, dest="prev_h")
    b.mov(0, dest="prev_prev_h")
    b.mov(0, dest="best")
    is_col0 = b.eq(tid, 0, dest="is_col0")
    nbr_idx = b.max(b.sub(tid, 1), 0, dest="nbr_idx")
    clear_limit = b.add(len_b, warp_size, dest="clear_limit")
    total_diag = b.sub(b.add(len_a, len_b), 1, dest="total_diag")

    # ----------------------------------------------------------------- wavefront loop
    b.loc(20)
    with b.for_range("diag", 0, total_diag) as diag:
        # --- the pathological re-initialization region (Section VI-C) -------
        b.loc(22)
        with b.for_range("clear_k", 0, clear_limit) as clear_k:
            b.loc(23)
            b.memset(b.reg("score_prev"), clear_k, 0)
            targets["clear_memset_prev"] = b.last_emitted.uid
            b.memset(b.reg("score_prev_prev"), clear_k, 0)
            targets["clear_memset_prev_prev"] = b.last_emitted.uid
            b.syncthreads()
            targets["clear_sync_after"] = b.last_emitted.uid
        # Record the loop-bound comparison (the condbr's condition) so the
        # recorded edit can collapse the whole clearing loop.
        clear_header_label = None
        for label in b.function.block_order():
            if label.startswith("clear_k.header"):
                clear_header_label = label
        header_block = b.function.blocks[clear_header_label]
        targets["clear_loop_compare"] = header_block.instructions[0].uid
        targets["clear_loop_branch"] = header_block.instructions[-1].uid

        # --- publish the wavefront registers for the neighbours --------------
        b.loc(30)
        with b.if_then(valid):
            b.store(b.reg("score_prev"), tid, b.reg("prev_h"))
            b.store(b.reg("score_prev_prev"), tid, b.reg("prev_prev_h"))
        b.syncthreads()

        # --- main cell computation ------------------------------------------
        b.loc(35)
        row = b.sub(diag, tid, dest="row")
        in_range = b.and_(b.ge(row, 0), b.lt(row, len_a), dest="in_range")
        computing = b.and_(valid, in_range, dest="computing")
        with b.if_then(computing):
            b.loc(37)
            nbr_prev_h = b.load(b.reg("score_prev"), nbr_idx, dest="nbr_prev_h")
            nbr_prev_prev_h = b.load(b.reg("score_prev_prev"), nbr_idx,
                                     dest="nbr_prev_prev_h")
            west = b.select(is_col0, 0, nbr_prev_h, dest="west")
            north_west = b.select(is_col0, 0, nbr_prev_prev_h, dest="north_west")
            row_is0 = b.eq(row, 0, dest="row_is0")
            north = b.select(row_is0, 0, b.reg("prev_h"), dest="north")
            north_west = b.select(row_is0, 0, north_west, dest="north_west")

            # The naive kernel re-reads the reference character from global
            # memory on every diagonal (no shared-memory cache).
            b.loc(44)
            a_char = b.load(b.reg("seq_a"), b.add(off_a, row), dest="a_char")
            is_match = b.eq(a_char, b_char, dest="is_match")
            similarity = b.select(is_match, MATCH_SCORE, MISMATCH_PENALTY, dest="similarity")
            diag_score = b.add(north_west, similarity, dest="diag_score")
            up_score = b.add(north, GAP_PENALTY, dest="up_score")
            left_score = b.add(west, GAP_PENALTY, dest="left_score")
            h_new = b.max(b.max(diag_score, up_score), left_score, dest="h_partial")
            h_new = b.max(h_new, 0, dest="h_new")
            b.max(b.reg("best"), h_new, dest="best")
            b.mov(b.reg("prev_h"), dest="prev_prev_h")
            b.mov(h_new, dest="prev_h")

        b.loc(54)
        b.syncthreads()

    # ----------------------------------------------------------------- epilogue
    b.loc(58)
    with b.if_then(valid):
        b.atomic_max(b.reg("scores"), pair, b.reg("best"))
    b.ret()
    module = build_module("adept_v0", b.build())
    return AdeptKernel(module=module, version="v0", block_threads=block_threads,
                       max_reference_length=max_reference_length, edit_targets=targets)
