"""ADEPT-V1: the hand-optimized GPU Smith-Waterman kernel.

This mirrors the structure of the expert-tuned ADEPT version the paper
studies (Section II-B and Figure 9):

* one thread block per sequence pair, one thread per query column;
* the anti-diagonal wavefront loop;
* neighbour-value exchange through a *mixed* mechanism -- warp shuffles
  (private registers) for lanes within a warp, a small per-warp shared
  staging array for the first lane of each warp (filled by lane 31 of the
  previous warp), and per-thread shared arrays for the second phase of the
  wavefront;
* the "conservative" ``activemask`` + ``ballot_sync`` calls before every
  shuffle that Section VI-B discusses;
* a redundant extra ``__syncthreads`` (the kind of defensive barrier the
  independent edits of Section V-B remove).

The builder returns the kernel module together with a dictionary of *edit
targets*: the uids of the instructions that the paper's discovered edits
(5, 6, 8, 10, the ballot_sync removal, ...) act on.  The recorded edit
sets in :mod:`repro.workloads.adept.discovered` are constructed from these
uids, and the GEVO search can rediscover the same edits because they are
ordinary operand-replacement / deletion edits over this kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ...ir import KernelBuilder, Module, Param, SharedDecl, build_module
from .smith_waterman import GAP_PENALTY, MATCH_SCORE, MISMATCH_PENALTY

#: Lane index of the last thread in a warp (the staging writer in ADEPT-V1).
LAST_LANE = 31


@dataclass
class AdeptKernel:
    """A built ADEPT kernel plus the metadata GEVO and the analyses need."""

    module: Module
    version: str
    block_threads: int
    max_reference_length: int
    #: Named instruction uids that the recorded (paper-discovered) edits target.
    edit_targets: Dict[str, int] = field(default_factory=dict)

    @property
    def main_kernel_name(self) -> str:
        return f"adept_{self.version}_kernel"


def _round_up_to_warp(threads: int, warp_size: int = 32) -> int:
    return int(math.ceil(max(1, threads) / warp_size) * warp_size)


#: Built kernels memoized by launch shape: the builders are pure functions
#: of their integer arguments, and reusing the same ``Module`` (hence the
#: same ``Function`` objects) lets the simulator's per-function decode and
#: JIT caches hit across driver constructions -- ``for_version`` in a
#: search loop stops paying IR-build + decode per evaluation.  Callers
#: must treat the shared module as immutable; GEVO already clones before
#: applying edits.
_KERNEL_CACHE: Dict[tuple, AdeptKernel] = {}


def build_adept_v1(block_threads: int, max_reference_length: int,
                   warp_size: int = 32) -> AdeptKernel:
    key = ("v1", _round_up_to_warp(block_threads, warp_size),
           max_reference_length, warp_size)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        kernel = _KERNEL_CACHE[key] = _build_adept_v1(
            block_threads, max_reference_length, warp_size)
    return kernel


def _build_adept_v1(block_threads: int, max_reference_length: int,
                   warp_size: int = 32) -> AdeptKernel:
    """Build the hand-tuned ADEPT-V1 module for a given launch shape.

    ``block_threads`` is the number of threads per block (>= the longest
    query in the batch, rounded up to a warp multiple by the driver);
    ``max_reference_length`` sizes the shared-memory cache of the reference
    sequence.
    """
    block_threads = _round_up_to_warp(block_threads, warp_size)
    num_warps = block_threads // warp_size
    targets: Dict[str, int] = {}

    params = [
        Param("seq_a", "buffer"), Param("seq_b", "buffer"),
        Param("offsets_a", "buffer"), Param("offsets_b", "buffer"),
        Param("lens_a", "buffer"), Param("lens_b", "buffer"),
        Param("scores", "buffer"),
    ]
    shared = [
        SharedDecl("a_cache", max_reference_length, "int"),
        SharedDecl("local_prev_h", block_threads, "int"),
        SharedDecl("local_prev_prev_h", block_threads, "int"),
        SharedDecl("sh_prev_h", num_warps, "int"),
        SharedDecl("sh_prev_prev_h", num_warps, "int"),
    ]
    b = KernelBuilder("adept_v1_kernel", params=params, shared=shared,
                      source_file="adept_v1_kernel.cu")

    # ----------------------------------------------------------------- prologue
    b.block("entry")
    b.loc(10)
    tid = b.tid_x(dest="tid")
    lane = b.laneid(dest="lane")
    warp = b.warpid(dest="warp")
    pair = b.bid_x(dest="pair")
    bdim = b.bdim_x(dest="bdim")
    off_a = b.load(b.reg("offsets_a"), pair, dest="off_a")
    off_b = b.load(b.reg("offsets_b"), pair, dest="off_b")
    len_a = b.load(b.reg("lens_a"), pair, dest="len_a")
    len_b = b.load(b.reg("lens_b"), pair, dest="len_b")
    b.loc(14)
    valid = b.lt(tid, len_b, dest="valid")

    # Cooperative load of the reference sequence into shared memory.
    b.loc(18)
    with b.for_range("cache_i", tid, len_a, step=bdim) as cache_i:
        element = b.load(b.reg("seq_a"), b.add(off_a, cache_i))
        b.store(b.reg("a_cache"), cache_i, element)
    b.syncthreads()

    # Per-thread query character (clamped index keeps invalid threads in bounds).
    b.loc(22)
    safe_tid = b.min(tid, b.sub(len_b, 1))
    b_char = b.load(b.reg("seq_b"), b.add(off_b, safe_tid), dest="b_char")

    # Wavefront state registers.
    b.loc(26)
    b.mov(0, dest="prev_h")
    b.mov(0, dest="prev_prev_h")
    b.mov(0, dest="best")
    is_col0 = b.eq(tid, 0, dest="is_col0")
    nbr_idx = b.max(b.sub(tid, 1), 0, dest="nbr_idx")
    src_lane = b.max(b.sub(lane, 1), 0, dest="src_lane")
    warp_prev = b.max(b.sub(warp, 1), 0, dest="warp_prev")
    total_diag = b.sub(b.add(len_a, len_b), 1, dest="total_diag")

    # ----------------------------------------------------------------- wavefront loop
    b.loc(31)
    with b.for_range("diag", 0, total_diag) as diag:
        # --- staging for the cross-warp register path (Fig. 9 lines 2-5) ----
        b.loc(33)
        is_last_lane = b.eq(lane, LAST_LANE, dest="is_last_lane")
        targets["edit5_lane_compare"] = b.last_emitted.uid
        with b.if_then(is_last_lane) as staging_branch:
            targets["staging_branch"] = staging_branch.uid
            b.loc(34)
            b.store(b.reg("sh_prev_h"), warp, b.reg("prev_h"))
            b.store(b.reg("sh_prev_prev_h"), warp, b.reg("prev_prev_h"))

        # --- per-thread shared publish for the short-wavefront phase
        #     (Fig. 9 lines 7-10; edit 6 rewrites this condition).  The
        #     hand-tuned kernel exchanges through the per-thread shared
        #     arrays only while the wavefront is shorter than a warp and
        #     switches to the register/shuffle path afterwards. -------------
        b.loc(38)
        publish_phase = b.lt(diag, warp_size, dest="publish_phase")
        targets["phase_publish_compare"] = b.last_emitted.uid
        with b.if_then(publish_phase) as publish_branch:
            targets["edit6_publish_branch"] = publish_branch.uid
            b.loc(39)
            b.store(b.reg("local_prev_h"), tid, b.reg("prev_h"))
            b.store(b.reg("local_prev_prev_h"), tid, b.reg("prev_prev_h"))

        b.loc(42)
        b.syncthreads()
        b.syncthreads()  # defensive, redundant barrier (an independent-edit target)
        targets["redundant_syncthreads"] = b.last_emitted.uid

        # --- main cell computation -------------------------------------------
        b.loc(44)
        row = b.sub(diag, tid, dest="row")
        in_range = b.and_(b.ge(row, 0), b.lt(row, len_a), dest="in_range")
        computing = b.and_(valid, in_range, dest="computing")
        with b.if_then(computing):
            # Exchange 1: neighbour's previous H (Fig. 9 lines 16-23, edit 8).
            b.loc(46)
            read_phase_one = b.lt(diag, warp_size, dest="read_phase_one")
            exchange1_then, exchange1_else = b.if_then_else(read_phase_one)
            targets["edit8_exchange_branch"] = b.last_emitted.uid
            with exchange1_then:
                b.loc(47)
                b.load(b.reg("local_prev_h"), nbr_idx, dest="nbr_prev_h")
            with exchange1_else:
                b.loc(49)
                cross_warp1 = b.and_(b.ne(warp, 0), b.eq(lane, 0), dest="cross_warp1")
                boundary_then, boundary_else = b.if_then_else(cross_warp1)
                with boundary_then:
                    b.loc(50)
                    b.load(b.reg("sh_prev_h"), warp_prev, dest="nbr_prev_h")
                with boundary_else:
                    b.loc(52)
                    amask1 = b.activemask(dest="amask1")
                    b.ballot_sync(amask1, computing, dest="bmask1")
                    targets["ballot_sync_1"] = b.last_emitted.uid
                    b.shfl_sync(amask1, b.reg("prev_h"), src_lane, dest="nbr_prev_h")

            # Exchange 2: neighbour's H from two diagonals ago (edit 10).
            b.loc(55)
            read_phase_two = b.lt(diag, warp_size, dest="read_phase_two")
            exchange2_then, exchange2_else = b.if_then_else(read_phase_two)
            targets["edit10_exchange_branch"] = b.last_emitted.uid
            with exchange2_then:
                b.loc(56)
                b.load(b.reg("local_prev_prev_h"), nbr_idx, dest="nbr_prev_prev_h")
            with exchange2_else:
                b.loc(58)
                cross_warp2 = b.and_(b.ne(warp, 0), b.eq(lane, 0), dest="cross_warp2")
                boundary2_then, boundary2_else = b.if_then_else(cross_warp2)
                with boundary2_then:
                    b.loc(59)
                    b.load(b.reg("sh_prev_prev_h"), warp_prev, dest="nbr_prev_prev_h")
                with boundary2_else:
                    b.loc(61)
                    amask2 = b.activemask(dest="amask2")
                    b.ballot_sync(amask2, computing, dest="bmask2")
                    targets["ballot_sync_2"] = b.last_emitted.uid
                    b.shfl_sync(amask2, b.reg("prev_prev_h"), src_lane,
                                dest="nbr_prev_prev_h")

            # Boundary conditions for the first column / first row.
            b.loc(64)
            west = b.select(is_col0, 0, b.reg("nbr_prev_h"), dest="west")
            north_west = b.select(is_col0, 0, b.reg("nbr_prev_prev_h"), dest="north_west")
            row_is0 = b.eq(row, 0, dest="row_is0")
            north = b.select(row_is0, 0, b.reg("prev_h"), dest="north")
            north_west = b.select(row_is0, 0, north_west, dest="north_west")

            # Smith-Waterman cell recurrence.
            b.loc(70)
            a_char = b.load(b.reg("a_cache"), row, dest="a_char")
            is_match = b.eq(a_char, b_char, dest="is_match")
            similarity = b.select(is_match, MATCH_SCORE, MISMATCH_PENALTY, dest="similarity")
            diag_score = b.add(north_west, similarity, dest="diag_score")
            up_score = b.add(north, GAP_PENALTY, dest="up_score")
            left_score = b.add(west, GAP_PENALTY, dest="left_score")
            h_new = b.max(b.max(diag_score, up_score), left_score, dest="h_partial")
            h_new = b.max(h_new, 0, dest="h_new")
            b.max(b.reg("best"), h_new, dest="best")

            # Rotate the wavefront registers for the next diagonal.
            b.loc(78)
            b.mov(b.reg("prev_h"), dest="prev_prev_h")
            b.mov(h_new, dest="prev_h")

        b.loc(81)
        b.syncthreads()

    # ----------------------------------------------------------------- epilogue
    b.loc(85)
    with b.if_then(valid):
        b.atomic_max(b.reg("scores"), pair, b.reg("best"))
    b.ret()
    main_kernel = b.build()

    reduce_kernel = _build_reduce_kernel()
    module = build_module("adept_v1", main_kernel, reduce_kernel)
    return AdeptKernel(module=module, version="v1", block_threads=block_threads,
                       max_reference_length=max_reference_length, edit_targets=targets)


def _build_reduce_kernel() -> "KernelBuilder":
    """ADEPT-V1's second kernel: reduce the per-pair scores to a global best.

    The paper notes ADEPT-V1 consists of two CUDA kernels; this small
    reduction kernel (strided grid loop + atomic max) plays that role and is
    launched by the driver after the alignment kernel.
    """
    b = KernelBuilder(
        "adept_v1_reduce",
        params=[Param("scores", "buffer"), Param("best_out", "buffer"),
                Param("n_pairs", "scalar")],
        source_file="adept_v1_reduce.cu",
    )
    b.block("entry")
    b.loc(5)
    tid = b.tid_x()
    bdim = b.bdim_x()
    with b.for_range("index", tid, b.reg("n_pairs"), step=bdim) as index:
        value = b.load(b.reg("scores"), index)
        b.atomic_max(b.reg("best_out"), 0, value)
    b.ret()
    return b.build()
