"""A tiny self-contained workload for experimentation, tests and the quickstart.

The kernel computes ``out[i] = 3 * x[i] + y[i]`` but -- like the naive
codes the paper studies -- carries obvious inefficiencies: a redundant
re-load of ``x[i]``, a defensive ``__syncthreads`` that synchronises
nothing, and a recomputation of an already-available value.  GEVO can find
all three with single deletion edits, which makes this workload ideal for
demonstrating the full pipeline (search, minimization, epistasis analysis)
in seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import KernelTrap, LaunchError
from ..gevo.edits import Edit, InstructionDelete
from ..gevo.fitness import CaseResult, FitnessResult, WorkloadAdapter
from ..gpu import GpuArch, GpuDevice, P100
from ..ir import KernelBuilder, Module, Param, build_module


@dataclass
class ToyKernel:
    """The built toy kernel plus its deliberately wasteful instruction uids."""

    module: Module
    edit_targets: Dict[str, int]


def build_toy_kernel() -> ToyKernel:
    """Build the ``saxpy_wasteful`` kernel."""
    targets: Dict[str, int] = {}
    b = KernelBuilder(
        "saxpy_wasteful",
        params=[Param("x", "buffer"), Param("y", "buffer"),
                Param("out", "buffer"), Param("n", "scalar")],
        source_file="saxpy_wasteful.cu",
    )
    b.block("entry")
    b.loc(3)
    tid = b.tid_x(dest="tid")
    bid = b.bid_x(dest="bid")
    bdim = b.bdim_x(dest="bdim")
    gid = b.add(b.mul(bid, bdim), tid, dest="gid")
    in_bounds = b.lt(gid, b.reg("n"), dest="in_bounds")
    with b.if_then(in_bounds):
        b.loc(6)
        xv = b.load(b.reg("x"), gid, dest="xv")
        # Waste #1: reload the same element (result unused).
        b.load(b.reg("x"), gid, dest="xv_again")
        targets["redundant_load"] = b.last_emitted.uid
        yv = b.load(b.reg("y"), gid, dest="yv")
        # Waste #2: a barrier that synchronises nothing.
        b.syncthreads()
        targets["useless_barrier"] = b.last_emitted.uid
        scaled = b.mul(xv, 3, dest="scaled")
        # Waste #3: recompute the scaled value (result unused).
        b.mul(xv, 3, dest="scaled_again")
        targets["recomputation"] = b.last_emitted.uid
        total = b.add(scaled, yv, dest="total")
        b.store(b.reg("out"), gid, total)
    b.ret()
    return ToyKernel(module=build_module("toy", b.build()), edit_targets=targets)


def toy_discovered_edits(kernel: ToyKernel) -> List[Edit]:
    """The three independent deletion edits GEVO finds on the toy kernel."""
    return [InstructionDelete(uid) for uid in kernel.edit_targets.values()]


class ToyWorkloadAdapter(WorkloadAdapter):
    """Minimal :class:`WorkloadAdapter`: fitness = runtime, validity = exact output."""

    def __init__(self, arch: GpuArch = P100, elements: int = 256, seed: int = 3):
        self.arch = arch
        self.device = GpuDevice(arch)
        self.kernel = build_toy_kernel()
        rng = np.random.default_rng(seed)
        self.x = rng.normal(size=elements)
        self.y = rng.normal(size=elements)
        self.expected = 3.0 * self.x + self.y
        self.elements = elements
        self.name = f"toy saxpy on {arch.name}"

    def original_module(self) -> Module:
        return self.kernel.module

    def evaluate(self, module: Module) -> FitnessResult:
        out = np.zeros(self.elements)
        blocks = max(1, math.ceil(self.elements / 64))
        try:
            launch = self.device.launch(module, grid=blocks, block=64,
                                        args={"x": self.x, "y": self.y,
                                              "out": out, "n": self.elements},
                                        kernel_name="saxpy_wasteful")
        except (KernelTrap, LaunchError) as exc:
            return FitnessResult.from_cases(
                [CaseResult("saxpy", False, math.inf, str(exc))])
        passed = bool(np.allclose(out, self.expected))
        message = "" if passed else "output differs from 3*x + y"
        return FitnessResult.from_cases(
            [CaseResult("saxpy", passed, launch.time_ms, message)])

    def evaluate_batched(self, modules: List[Module]) -> List[FitnessResult]:
        """Fitness of N co-batchable variants in one stacked pass.

        Bit-for-bit equivalent to mapping :meth:`evaluate` over *modules*
        (the original kernel's barrier keeps it on the solo fallback;
        barrier-deleting variants take the batched path).
        """
        blocks = max(1, math.ceil(self.elements / 64))
        outs = [np.zeros(self.elements) for _ in modules]
        rows = [(module, {"x": self.x, "y": self.y, "out": out, "n": self.elements})
                for module, out in zip(modules, outs)]
        outcomes = self.device.launch_batched(rows, grid=blocks, block=64,
                                              kernel_name="saxpy_wasteful")
        results = []
        for outcome, out in zip(outcomes, outs):
            if isinstance(outcome, Exception):
                results.append(FitnessResult.from_cases(
                    [CaseResult("saxpy", False, math.inf, str(outcome))]))
                continue
            passed = bool(np.allclose(out, self.expected))
            message = "" if passed else "output differs from 3*x + y"
            results.append(FitnessResult.from_cases(
                [CaseResult("saxpy", passed, outcome.time_ms, message)]))
        return results
