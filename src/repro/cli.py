"""Command-line interface for the reproduction.

Two sub-commands are provided::

    python -m repro.cli list                     # show available experiments
    python -m repro.cli run figure5              # regenerate one table / figure
    python -m repro.cli run figure5 --arch P100  # restrict to one GPU where supported
    python -m repro.cli search toy --generations 8   # run a small live GEVO search

The experiment identifiers match DESIGN.md / EXPERIMENTS.md and the
benchmark harness, so the CLI is simply another front end over
:mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import available_experiments, get_experiment
from .gevo import GevoConfig, GevoSearch
from .gpu import EVALUATION_ORDER, get_arch


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Understanding the Power of Evolutionary Computation "
                    "for GPU Code Optimization' (IISWC 2022)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", help="experiment identifier (see 'list')")
    run_parser.add_argument("--arch", choices=list(EVALUATION_ORDER), default=None,
                            help="restrict architecture-sweep experiments to one GPU")

    search_parser = subparsers.add_parser(
        "search", help="run a scaled-down live GEVO search on one workload")
    search_parser.add_argument("workload", choices=["toy", "adept-v1", "simcov"])
    search_parser.add_argument("--arch", choices=list(EVALUATION_ORDER), default="P100")
    search_parser.add_argument("--population", type=int, default=12)
    search_parser.add_argument("--generations", type=int, default=8)
    search_parser.add_argument("--seed", type=int, default=0)
    return parser


def _make_adapter(workload: str, arch_name: str):
    arch = get_arch(arch_name)
    if workload == "toy":
        from .workloads import ToyWorkloadAdapter

        return ToyWorkloadAdapter(arch)
    if workload == "adept-v1":
        from .workloads.adept import AdeptWorkloadAdapter, search_pairs

        return AdeptWorkloadAdapter("v1", arch, fitness_cases=[search_pairs()])
    from .workloads.simcov import SimCovParams, SimCovWorkloadAdapter

    return SimCovWorkloadAdapter(arch, fitness_params=SimCovParams.quick())


def _command_list() -> int:
    print("available experiments:")
    for name in available_experiments():
        print(f"  {name}")
    return 0


def _command_run(arguments: argparse.Namespace) -> int:
    try:
        experiment = get_experiment(arguments.experiment)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    kwargs = {}
    if arguments.arch is not None:
        # Architecture-sweep experiments accept an `architectures` list; the
        # single-GPU analyses accept `arch_name`.
        if arguments.experiment in ("figure4", "figure5", "ballot_sync", "generality"):
            kwargs["architectures"] = [arguments.arch]
        elif arguments.experiment in ("figure6", "figure7", "figure8", "boundary"):
            kwargs["arch_name"] = arguments.arch
    result = experiment(**kwargs)
    print(result.to_table())
    return 0


def _command_search(arguments: argparse.Namespace) -> int:
    adapter = _make_adapter(arguments.workload, arguments.arch)
    config = GevoConfig.quick(seed=arguments.seed,
                              population_size=arguments.population,
                              generations=arguments.generations)
    print(f"searching {adapter.name}: population={config.population_size}, "
          f"generations={config.generations}")
    result = GevoSearch(adapter, config).run(validate_best=True)
    print(f"best speedup: {result.speedup:.3f}x with {len(result.best_edits())} edits "
          f"({result.evaluations} evaluations, {result.wall_clock_seconds:.1f}s)")
    if result.validation is not None:
        print(f"held-out validation: {'pass' if result.validation.valid else 'FAIL'}")
    for edit in result.best_edits():
        print(f"  - {edit.describe(adapter.original_module())}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro.cli``."""
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "run":
        return _command_run(arguments)
    return _command_search(arguments)


if __name__ == "__main__":
    raise SystemExit(main())
