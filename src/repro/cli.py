"""Command-line interface for the reproduction.

Sub-commands::

    python -m repro.cli list                     # show available experiments
    python -m repro.cli run figure5              # regenerate one table / figure
    python -m repro.cli run figure5 --arch P100  # restrict to one GPU where supported
    python -m repro.cli search toy --generations 8   # run a small live GEVO search
    python -m repro.cli baseline random toy          # run a search baseline
    python -m repro.cli baseline hill toy --steps 40
    python -m repro.cli sweep --arch P100,V100 --workload toy --runs 3

Searches, baselines and sweeps run through the evaluation runtime
(:mod:`repro.runtime`); the shared runtime flags (``--jobs``,
``--executor``, ``--cache``/``--cache-backend``/``--cache-shards``,
``--resume``, ``--checkpoint-every``, ``--reference-interpreter``) are
documented in the README's CLI reference and in ``docs/runtime.md``.

The experiment identifiers match DESIGN.md / EXPERIMENTS.md and the
benchmark harness, so the CLI is simply another front end over
:mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional

from .baselines import HillClimber, RandomSearch
from .errors import ReproError
from .experiments import available_experiments, get_experiment
from .gevo import GevoConfig, GevoSearch
from .gpu import EVALUATION_ORDER, available_archs, parse_arch_list
from .runtime import EvaluationEngine, FitnessCache, SearchCheckpoint, make_executor
from .runtime.console import ConsoleReporter, configure_console, console_logger
from .runtime.sweep import (
    METHOD_CHOICES,
    SweepSpec,
    make_adapter,
    resolve_workload,
    run_sweep,
)
from .runtime.telemetry import Telemetry, emit_module_hotspots
from .runtime.trace_format import summarize_trace

#: Workload names accepted by ``search`` / ``baseline`` / ``sweep``.
WORKLOADS = ["toy", "adept-v1", "simcov"]

_log = console_logger("cli")


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every subcommand that evaluates fitness."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="evaluate each generation across N workers (0 = all cores)")
    parser.add_argument(
        "--executor", choices=["auto", "serial", "process", "async", "sharded"],
        default="auto",
        help="execution strategy for --jobs: in-process serial, a process "
             "pool, bounded-concurrency asyncio, or hash-sharded lanes "
             "(default: serial for --jobs 1, process pool otherwise)")
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persist the fitness cache to PATH; re-runs hit the warm cache")
    parser.add_argument(
        "--cache-backend", choices=["auto", "json", "sqlite", "sharded"],
        default="auto",
        help="disk tier for --cache: whole-document JSON, incremental "
             "WAL-mode SQLite, or a directory of hash-partitioned SQLite "
             "shards (default: pick from the path)")
    parser.add_argument(
        "--cache-shards", type=int, default=None, metavar="N",
        help="shard count when creating a fresh sharded cache (an existing "
             "sharded cache keeps the count it was created with)")
    parser.add_argument(
        "--interpreter-tier", choices=["auto", "jit", "dispatch", "oracle"],
        default="auto",
        help="which of the three bit-for-bit-equivalent simulator tiers to "
             "evaluate on: the exec-compiled segment JIT (fastest, the "
             "default), the decode-once dispatch tables, or the "
             "tree-walking reference oracle (slowest; for debugging the "
             "simulator itself)")
    parser.add_argument(
        "--reference-interpreter", action="store_true",
        help="shorthand for --interpreter-tier oracle (kept from before the "
             "tier flag existed); combining it with any other explicit tier "
             "is an error")
    batching = parser.add_mutually_exclusive_group()
    batching.add_argument(
        "--batch-launches", dest="batch_launches", action="store_true",
        default=None,
        help="stack co-batchable candidates (same structural JIT key) of a "
             "generation into one (N, lanes) NumPy launch; bit-for-bit "
             "equivalent to per-candidate launches (default: on for serial "
             "execution, off when --jobs fans out to a process pool)")
    batching.add_argument(
        "--no-batch-launches", dest="batch_launches", action="store_false",
        help="force per-candidate launches even under serial execution")
    parser.add_argument(
        "--trace", default=None, metavar="DIR",
        help="record a structured telemetry trace under DIR: events.jsonl "
             "(engine batches, executor dispatch/faults, per-generation "
             "search progress) plus metrics.json; inspect with "
             "'repro trace summarize DIR'")
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the metrics snapshot (counters/gauges/histograms) as "
             "JSON when the command finishes")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress progress lines; only warnings and errors")
    parser.add_argument(
        "--verbose", action="store_true",
        help="also show per-generation / per-step search progress")


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """Engine flags plus single-search checkpoint/resume."""
    _add_engine_arguments(parser)
    parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="checkpoint the search to PATH; if PATH exists, resume from it "
             "instead of starting over")
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="G",
        help="with --resume, write the checkpoint every G rounds (default: "
             "every generation/sampling wave; for the hill climber, whose "
             "rounds are single evaluations, every population-size steps)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Understanding the Power of Evolutionary Computation "
                    "for GPU Code Optimization' (IISWC 2022)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", help="experiment identifier (see 'list')")
    run_parser.add_argument("--arch", choices=list(EVALUATION_ORDER), default=None,
                            help="restrict architecture-sweep experiments to one GPU")

    search_parser = subparsers.add_parser(
        "search", help="run a scaled-down live GEVO search on one workload")
    search_parser.add_argument("workload", choices=WORKLOADS)
    search_parser.add_argument("--arch", choices=list(available_archs()), default="P100")
    search_parser.add_argument("--population", type=int, default=12)
    search_parser.add_argument("--generations", type=int, default=8)
    search_parser.add_argument("--seed", type=int, default=0)
    _add_runtime_arguments(search_parser)

    baseline_parser = subparsers.add_parser(
        "baseline", help="run a non-evolutionary search baseline on one workload")
    baseline_parser.add_argument("method", choices=["random", "hill"],
                                 help="random sampling or first-improvement hill climbing")
    baseline_parser.add_argument("workload", choices=WORKLOADS)
    baseline_parser.add_argument("--arch", choices=list(available_archs()), default="P100")
    baseline_parser.add_argument("--population", type=int, default=12,
                                 help="budget factor (budget = population x generations)")
    baseline_parser.add_argument("--generations", type=int, default=8)
    baseline_parser.add_argument("--seed", type=int, default=0)
    baseline_parser.add_argument(
        "--steps", type=int, default=None, metavar="N",
        help="hill climber only: climb for exactly N steps instead of the "
             "population x generations budget")
    _add_runtime_arguments(baseline_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a search grid (architectures x workloads x seeds) "
                      "and aggregate one report")
    sweep_parser.add_argument(
        "--arch", default=",".join(EVALUATION_ORDER), metavar="A,B,...",
        help="comma-separated architecture list (default: all paper GPUs)")
    sweep_parser.add_argument(
        "--workload", default="toy", metavar="W,X,...",
        help="comma-separated workload list (toy, adept[-v1], simcov)")
    sweep_parser.add_argument(
        "--seeds", default=None, metavar="S,T,...",
        help="comma-separated seed list (overrides --runs)")
    sweep_parser.add_argument(
        "--runs", type=int, default=1, metavar="N",
        help="run seeds 0..N-1 per (arch, workload) cell (default: 1)")
    sweep_parser.add_argument(
        "--method", choices=list(METHOD_CHOICES), default="gevo",
        help="search to run per leg: GEVO or a baseline (default: gevo)")
    sweep_parser.add_argument("--population", type=int, default=12)
    sweep_parser.add_argument("--generations", type=int, default=8)
    sweep_parser.add_argument(
        "--sweep-dir", default="sweep-out", metavar="DIR",
        help="directory holding per-leg checkpoints/results, the shared "
             "cache and the aggregated report (default: sweep-out)")
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="skip legs already completed in --sweep-dir and continue "
             "unfinished legs from their checkpoints (zero re-evaluations)")
    sweep_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="G",
        help="checkpoint each leg every G rounds (default: every round; "
             "the hill climber defaults to every population-size steps)")
    _add_engine_arguments(sweep_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect a telemetry trace directory recorded with --trace")
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command",
                                                   required=True)
    summarize_parser = trace_subparsers.add_parser(
        "summarize", help="render phase timing, cache hit rate, evals/sec, "
                          "executor utilization and profiler hotspots")
    summarize_parser.add_argument(
        "trace_dir", metavar="DIR",
        help="trace directory (holds events.jsonl and metrics.json)")
    return parser


def _resolve_interpreter_tier(arguments: argparse.Namespace) -> Optional[str]:
    """The interpreter tier the flags select, or ``None`` for the default.

    ``--reference-interpreter`` is the historical spelling of
    ``--interpreter-tier oracle``; naming both is fine when they agree and
    a hard error when they contradict (silently preferring one would make
    a debugging run measure the wrong interpreter).
    """
    tier = None if arguments.interpreter_tier == "auto" else arguments.interpreter_tier
    if arguments.reference_interpreter:
        if tier not in (None, "oracle"):
            raise ReproError(
                f"--reference-interpreter selects the oracle tier but "
                f"--interpreter-tier {tier} asks for a different one; "
                "drop one of the two flags")
        return "oracle"
    return tier


def _resolve_batch_launches(arguments: argparse.Namespace) -> Optional[bool]:
    """The population-batching switch, or ``None`` for the serial-only default.

    Batched launches run through the segment-JIT tier's stacked factories,
    so forcing them together with a slower per-candidate tier is a
    contradiction: rejected loudly, like the tier flags themselves.
    """
    batch = getattr(arguments, "batch_launches", None)
    if batch:
        tier = _resolve_interpreter_tier(arguments)
        if tier in ("oracle", "dispatch"):
            raise ReproError(
                f"--batch-launches stacks candidates through the segment-JIT "
                f"tier but --interpreter-tier {tier} pins per-candidate "
                "interpretation; drop one of the two flags")
    return batch


def _make_telemetry(arguments: argparse.Namespace) -> Telemetry:
    """The command's telemetry handle, with the console reporter attached.

    Always enabled for CLI runs: the console reporter renders progress
    from the event stream, so the events must flow even without
    ``--trace`` (no trace dir means no files are written -- and pool
    workers fall back to :data:`~repro.runtime.telemetry.NULL_TELEMETRY`,
    keeping the evaluation path un-instrumented).
    """
    configure_console(quiet=arguments.quiet, verbose=arguments.verbose)
    telemetry = Telemetry(arguments.trace, enabled=True)
    telemetry.add_sink(ConsoleReporter())
    return telemetry


def _finish_telemetry(arguments: argparse.Namespace, telemetry: Telemetry) -> None:
    """Merge/flush the trace and honour ``--metrics``."""
    telemetry.close()
    if arguments.metrics:
        print(json.dumps(telemetry.metrics_snapshot(), indent=2, sort_keys=True))
    if arguments.trace:
        _log.info(f"trace: {arguments.trace} (events.jsonl + metrics.json, "
                  f"run {telemetry.run_id})")


def _make_engine(adapter, arguments: argparse.Namespace,
                 telemetry: Optional[Telemetry] = None) -> EvaluationEngine:
    backend = None if arguments.cache_backend == "auto" else arguments.cache_backend
    return EvaluationEngine(
        adapter,
        executor=make_executor(arguments.jobs, arguments.executor),
        cache=FitnessCache(arguments.cache, backend=backend,
                           shards=arguments.cache_shards),
        telemetry=telemetry,
        batch_launches=_resolve_batch_launches(arguments))


def _load_resume_checkpoint(arguments: argparse.Namespace, config: GevoConfig,
                            *, algorithm: str) -> Optional[SearchCheckpoint]:
    """The checkpoint for --resume, if the file exists.

    A checkpoint written by a different algorithm, on a different
    architecture, or under a different configuration is rejected with a
    :class:`~repro.errors.ReproError` naming exactly what differs.
    (Earlier versions silently adopted the checkpoint's configuration,
    which made a typo'd ``--seed`` resume a different run than the one
    asked for; the search layer's ``resolve_checkpoint`` re-checks the
    same invariants, so the CLI refusal is just the earlier, friendlier
    surface for it.)
    """
    if arguments.resume is None or not os.path.exists(arguments.resume):
        return None
    checkpoint = SearchCheckpoint.load(arguments.resume)
    if checkpoint.algorithm != algorithm:
        raise ReproError(
            f"checkpoint {arguments.resume} was written by the "
            f"{checkpoint.algorithm!r} search, not {algorithm!r}; use the "
            "matching subcommand (or start fresh with a new checkpoint path)")
    if checkpoint.arch_name is not None and checkpoint.arch_name != arguments.arch:
        raise ReproError(
            f"checkpoint {arguments.resume} was recorded on architecture "
            f"{checkpoint.arch_name!r}, not {arguments.arch!r}; pass the "
            "original --arch (or start fresh with a new checkpoint path)")
    restored = checkpoint.restore_config()
    if restored != config:
        from .runtime.checkpoint import describe_config_mismatch

        raise ReproError(
            f"checkpoint {arguments.resume} was recorded with a different "
            f"configuration ({describe_config_mismatch(checkpoint.config, dataclasses.asdict(config))}); "
            "pass the original --population/--generations/--seed flags, or "
            "start fresh with a new checkpoint path")
    _log.info(f"resuming from {arguments.resume} "
              f"(round {checkpoint.generation}, "
              f"{len(checkpoint.cache_entries)} cached fitness results)")
    return checkpoint


def _command_list() -> int:
    print("available experiments:")
    for name in available_experiments():
        print(f"  {name}")
    return 0


def _command_run(arguments: argparse.Namespace) -> int:
    try:
        experiment = get_experiment(arguments.experiment)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    kwargs = {}
    if arguments.arch is not None:
        # Architecture-sweep experiments accept an `architectures` list; the
        # single-GPU analyses accept `arch_name`.
        if arguments.experiment in ("figure4", "figure5", "ballot_sync", "generality"):
            kwargs["architectures"] = [arguments.arch]
        elif arguments.experiment in ("figure6", "figure7", "figure8", "boundary"):
            kwargs["arch_name"] = arguments.arch
    result = experiment(**kwargs)
    print(result.to_table())
    return 0


def _command_search(arguments: argparse.Namespace) -> int:
    telemetry = _make_telemetry(arguments)
    adapter = make_adapter(arguments.workload, arguments.arch,
                           interpreter_tier=_resolve_interpreter_tier(arguments))
    config = GevoConfig.quick(seed=arguments.seed,
                              population_size=arguments.population,
                              generations=arguments.generations)
    resume_from = _load_resume_checkpoint(arguments, config, algorithm="gevo")
    engine = _make_engine(adapter, arguments, telemetry)

    _log.info(f"searching {adapter.name}: population={config.population_size}, "
              f"generations={config.generations}, executor={engine.executor.name}")
    try:
        result = GevoSearch(adapter, config, engine=engine).run(
            validate_best=True,
            checkpoint_path=arguments.resume,
            checkpoint_every=arguments.checkpoint_every or 1,
            resume_from=resume_from,
        )
    finally:
        engine.close()
    _log.info(f"best speedup: {result.speedup:.3f}x with {len(result.best_edits())} edits "
              f"({result.evaluations} evaluations, {result.wall_clock_seconds:.1f}s)")
    _log.info(f"runtime: {engine.stats().summary()}")
    if result.validation is not None:
        _log.info(f"held-out validation: {'pass' if result.validation.valid else 'FAIL'}")
    for edit in result.best_edits():
        _log.info(f"  - {edit.describe(adapter.original_module())}")
    if arguments.trace:
        emit_module_hotspots(telemetry, adapter, adapter.original_module(),
                             label=f"search-{arguments.workload}")
    _finish_telemetry(arguments, telemetry)
    return 0


def _command_baseline(arguments: argparse.Namespace) -> int:
    telemetry = _make_telemetry(arguments)
    adapter = make_adapter(arguments.workload, arguments.arch,
                           interpreter_tier=_resolve_interpreter_tier(arguments))
    config = GevoConfig.quick(seed=arguments.seed,
                              population_size=arguments.population,
                              generations=arguments.generations)
    resume_from = _load_resume_checkpoint(
        arguments, config,
        algorithm="random_search" if arguments.method == "random" else "hill_climber")
    engine = _make_engine(adapter, arguments, telemetry)

    method = "random search" if arguments.method == "random" else "hill climbing"
    budget = (arguments.steps
              if arguments.method == "hill" and arguments.steps is not None
              else config.population_size * config.generations)
    _log.info(f"{method} on {adapter.name}: budget={budget}, "
              f"executor={engine.executor.name}")
    try:
        if arguments.method == "random":
            search = RandomSearch(adapter, config, engine=engine)
            result = search.run(checkpoint_path=arguments.resume,
                                checkpoint_every=arguments.checkpoint_every or 1,
                                resume_from=resume_from)
            edits = len(result.best.edits) if result.best is not None else 0
            _log.info(f"best speedup: {result.speedup:.3f}x with {edits} edits "
                      f"({result.evaluations} evaluations, "
                      f"{result.wall_clock_seconds:.1f}s)")
        else:
            # A hill-climbing "round" is one evaluation, and every
            # checkpoint re-serialises the whole cache: default to one
            # checkpoint per population-size steps, not per step.
            checkpoint_every = (arguments.checkpoint_every
                                or max(1, config.population_size))
            search = HillClimber(adapter, config, engine=engine)
            result = search.run(steps=arguments.steps,
                                checkpoint_path=arguments.resume,
                                checkpoint_every=checkpoint_every,
                                resume_from=resume_from)
            _log.info(f"best speedup: {result.speedup:.3f}x with {len(result.best.edits)} "
                      f"edits ({result.accepted_edits} accepted / "
                      f"{result.rejected_edits} rejected, "
                      f"{result.evaluations} evaluations, "
                      f"{result.wall_clock_seconds:.1f}s)")
    finally:
        engine.close()
    _log.info(f"runtime: {engine.stats().summary()}")
    if arguments.trace:
        emit_module_hotspots(telemetry, adapter, adapter.original_module(),
                             label=f"baseline-{arguments.method}-{arguments.workload}")
    _finish_telemetry(arguments, telemetry)
    return 0


def _command_sweep(arguments: argparse.Namespace) -> int:
    telemetry = _make_telemetry(arguments)
    interpreter_tier = _resolve_interpreter_tier(arguments)
    batch_launches = _resolve_batch_launches(arguments)
    try:
        archs = parse_arch_list(arguments.arch)
        workloads = [resolve_workload(name.strip())
                     for name in arguments.workload.split(",") if name.strip()]
        if arguments.seeds is not None:
            seeds = [int(seed) for seed in arguments.seeds.split(",") if seed.strip()]
        else:
            seeds = list(range(max(1, arguments.runs)))
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: --seeds expects a comma-separated integer list ({error})",
              file=sys.stderr)
        return 2
    spec = SweepSpec(archs=archs, workloads=workloads, seeds=seeds,
                     method=arguments.method,
                     population=arguments.population,
                     generations=arguments.generations)
    backend = None if arguments.cache_backend == "auto" else arguments.cache_backend
    _log.info(f"sweep: {len(spec.legs())} legs "
              f"({len(workloads)} workloads x {len(archs)} archs x {len(seeds)} seeds), "
              f"method={arguments.method}, executor={arguments.executor}, "
              f"jobs={arguments.jobs}"
              + (", resuming" if arguments.resume else ""))

    # Per-leg progress lines come from the console reporter rendering the
    # orchestrator's ``sweep.leg`` telemetry events -- no separate
    # narration callback to drift out of sync with the trace.
    report = run_sweep(
        spec, arguments.sweep_dir,
        resume=arguments.resume,
        jobs=arguments.jobs,
        executor_kind=arguments.executor,
        cache_path=arguments.cache if arguments.cache else "auto",
        cache_backend=backend,
        cache_shards=arguments.cache_shards,
        checkpoint_every=arguments.checkpoint_every,
        interpreter_tier=interpreter_tier,
        batch_launches=batch_launches,
        telemetry=telemetry,
    )
    _log.info("")
    _log.info(report.to_table())
    totals = report.totals()
    _log.info(f"\ntotals: {totals['completed']} legs run, {totals['skipped']} skipped, "
              f"{totals['fresh_evaluations']} fresh evaluations")
    json_path = os.path.join(arguments.sweep_dir, "report.json")
    _log.info(f"report: {json_path} (+ report.csv)")
    _finish_telemetry(arguments, telemetry)
    return 0


def _command_trace(arguments: argparse.Namespace) -> int:
    trace_dir = arguments.trace_dir
    if not os.path.isdir(trace_dir):
        print(f"error: {trace_dir} is not a directory", file=sys.stderr)
        return 2
    summary = summarize_trace(trace_dir)
    if not summary.event_count:
        print(f"error: no trace events under {trace_dir} "
              "(expected events.jsonl or events-*.jsonl)", file=sys.stderr)
        return 2
    print(summary.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro.cli``."""
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "run":
        return _command_run(arguments)
    if arguments.command == "trace":
        return _command_trace(arguments)
    try:
        if arguments.command == "baseline":
            return _command_baseline(arguments)
        if arguments.command == "sweep":
            return _command_sweep(arguments)
        return _command_search(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
